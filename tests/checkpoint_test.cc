// Checkpoint format, chain writing, restore, memory exclusion,
// corruption detection, and GC.
#include <gtest/gtest.h>

#include <cstring>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

/// Fill a span with a deterministic pattern derived from `seed`.
void fill_pattern(std::span<std::byte> mem, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < mem.size(); i += 8) {
    std::uint64_t v = rng.next_u64();
    std::memcpy(mem.data() + i, &v, std::min<std::size_t>(8, mem.size() - i));
  }
}

/// Compare restored block contents against the live space.
void expect_blocks_equal(const RestoredState& state, AddressSpace& space) {
  auto blocks = space.blocks();
  ASSERT_EQ(state.blocks.size(), blocks.size());
  for (const auto& info : blocks) {
    auto it = state.blocks.find(info.id);
    ASSERT_NE(it, state.blocks.end()) << "missing block " << info.id;
    auto span = space.block_span(info.id);
    ASSERT_TRUE(span.is_ok());
    ASSERT_EQ(it->second.data.size(), span->size());
    EXPECT_EQ(std::memcmp(it->second.data.data(), span->data(),
                          span->size()),
              0)
        << "content mismatch in block " << info.id;
    EXPECT_EQ(it->second.name, info.name);
  }
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest()
      : storage_(storage::make_memory_backend()),
        space_(engine_, "rank0"),
        ckpt_(Checkpointer::create(space_, storage_.get()).value()) {}

  ExplicitEngine engine_;
  std::unique_ptr<storage::StorageBackend> storage_;
  AddressSpace space_;
  std::unique_ptr<Checkpointer> ckpt_;
};

TEST_F(CheckpointTest, FullCheckpointRoundTrip) {
  auto a = space_.map(4 * page_size(), AreaKind::kHeap, "a");
  auto b = space_.map(2 * page_size(), AreaKind::kMmap, "b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  fill_pattern(a->mem, 1);
  fill_pattern(b->mem, 2);

  auto meta = ckpt_->checkpoint_full(10.0);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta->kind, Kind::kFull);
  EXPECT_EQ(meta->payload_pages, 6u);

  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state->sequence, meta->sequence);
  EXPECT_DOUBLE_EQ(state->virtual_time, 10.0);
  expect_blocks_equal(*state, space_);
}

TEST_F(CheckpointTest, IncrementalCapturesOnlyDirtyPages) {
  auto a = space_.map(8 * page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 3);
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());

  ASSERT_TRUE(engine_.arm().is_ok());
  // Mutate pages 2 and 5.
  fill_pattern(a->mem.subspan(2 * page_size(), page_size()), 42);
  fill_pattern(a->mem.subspan(5 * page_size(), page_size()), 43);
  engine_.note_write(a->mem.data() + 2 * page_size(), page_size());
  engine_.note_write(a->mem.data() + 5 * page_size(), page_size());
  auto snap = engine_.collect(true);
  ASSERT_TRUE(snap.is_ok());

  auto meta = ckpt_->checkpoint_incremental(*snap, 1.0);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta->kind, Kind::kIncremental);
  EXPECT_EQ(meta->payload_pages, 2u);  // exactly the dirty pages

  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());
  expect_blocks_equal(*state, space_);
}

TEST_F(CheckpointTest, FirstIncrementalPromotesToFull) {
  auto a = space_.map(page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  memtrack::DirtySnapshot empty;
  auto meta = ckpt_->checkpoint_incremental(empty, 0.0);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta->kind, Kind::kFull);
}

TEST_F(CheckpointTest, ChainOfIncrementalsRestoresLatestState) {
  auto a = space_.map(16 * page_size(), AreaKind::kHeap, "data");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 7);
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());

  Rng rng(99);
  for (int step = 1; step <= 10; ++step) {
    // Random writes each interval.
    int writes = 1 + static_cast<int>(rng.next_index(5));
    for (int w = 0; w < writes; ++w) {
      std::size_t pg = rng.next_index(16);
      fill_pattern(a->mem.subspan(pg * page_size(), page_size()),
                   rng.next_u64());
      engine_.note_write(a->mem.data() + pg * page_size(), page_size());
    }
    auto snap = engine_.collect(true);
    ASSERT_TRUE(snap.is_ok());
    ASSERT_TRUE(
        ckpt_->checkpoint_incremental(*snap, static_cast<double>(step))
            .is_ok());
  }

  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());
  expect_blocks_equal(*state, space_);
  EXPECT_EQ(ckpt_->chain().size(), 11u);
}

TEST_F(CheckpointTest, RestoreUptoIntermediateSequence) {
  auto a = space_.map(2 * page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 1);
  std::vector<std::byte> v0(a->mem.begin(), a->mem.end());
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());

  fill_pattern(a->mem, 2);
  engine_.note_write(a->mem.data(), a->mem.size());
  auto snap1 = engine_.collect(true);
  ASSERT_TRUE(snap1.is_ok());
  auto m1 = ckpt_->checkpoint_incremental(*snap1, 1.0);
  ASSERT_TRUE(m1.is_ok());
  std::vector<std::byte> v1(a->mem.begin(), a->mem.end());

  fill_pattern(a->mem, 3);
  engine_.note_write(a->mem.data(), a->mem.size());
  auto snap2 = engine_.collect(true);
  ASSERT_TRUE(snap2.is_ok());
  ASSERT_TRUE(ckpt_->checkpoint_incremental(*snap2, 2.0).is_ok());

  // Roll back to the middle of the chain.
  auto state = restore_chain(*storage_, 0, m1->sequence);
  ASSERT_TRUE(state.is_ok());
  ASSERT_EQ(state->blocks.size(), 1u);
  const auto& restored = state->blocks.begin()->second.data;
  EXPECT_EQ(std::memcmp(restored.data(), v1.data(), v1.size()), 0);
  EXPECT_NE(std::memcmp(restored.data(), v0.data(), v0.size()), 0);
}

TEST_F(CheckpointTest, MemoryExclusionAcrossChain) {
  auto keep = space_.map(2 * page_size(), AreaKind::kHeap, "keep");
  auto doomed = space_.map(2 * page_size(), AreaKind::kMmap, "doomed");
  ASSERT_TRUE(keep.is_ok());
  ASSERT_TRUE(doomed.is_ok());
  fill_pattern(keep->mem, 1);
  fill_pattern(doomed->mem, 2);
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());

  // Unmap "doomed", map a new block, write to it.
  ASSERT_TRUE(space_.unmap(doomed->id).is_ok());
  auto fresh = space_.map(3 * page_size(), AreaKind::kHeap, "fresh");
  ASSERT_TRUE(fresh.is_ok());
  fill_pattern(fresh->mem.subspan(0, page_size()), 5);
  engine_.note_write(fresh->mem.data(), page_size());
  auto snap = engine_.collect(true);
  ASSERT_TRUE(snap.is_ok());
  ASSERT_TRUE(ckpt_->checkpoint_incremental(*snap, 1.0).is_ok());

  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());
  EXPECT_EQ(state->blocks.size(), 2u);
  EXPECT_EQ(state->blocks.count(doomed->id), 0u);  // excluded
  ASSERT_EQ(state->blocks.count(fresh->id), 1u);
  // Fresh block: written page restored, untouched pages zero.
  const auto& fb = state->blocks.at(fresh->id).data;
  EXPECT_EQ(std::memcmp(fb.data(), fresh->mem.data(), page_size()), 0);
  for (std::size_t i = page_size(); i < fb.size(); ++i) {
    ASSERT_EQ(fb[i], std::byte{0});
  }
  expect_blocks_equal(*state, space_);
}

TEST_F(CheckpointTest, FullEveryReseedsChain) {
  CheckpointerOptions opts;
  opts.full_every = 2;
  auto ckpt = Checkpointer::create(space_, storage_.get(), opts).value();
  auto a = space_.map(page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());

  memtrack::DirtySnapshot empty;
  std::vector<Kind> kinds;
  for (int i = 0; i < 6; ++i) {
    auto meta = ckpt->checkpoint_incremental(empty, static_cast<double>(i));
    ASSERT_TRUE(meta.is_ok());
    kinds.push_back(meta->kind);
  }
  // full, inc, inc, full, inc, inc
  EXPECT_EQ(kinds[0], Kind::kFull);
  EXPECT_EQ(kinds[1], Kind::kIncremental);
  EXPECT_EQ(kinds[2], Kind::kIncremental);
  EXPECT_EQ(kinds[3], Kind::kFull);
  EXPECT_EQ(kinds[4], Kind::kIncremental);
}

TEST_F(CheckpointTest, TruncateBeforeLastFullRemovesOldObjects) {
  CheckpointerOptions opts;
  opts.full_every = 2;
  auto ckpt = Checkpointer::create(space_, storage_.get(), opts).value();
  auto a = space_.map(page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());
  memtrack::DirtySnapshot empty;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        ckpt->checkpoint_incremental(empty, static_cast<double>(i)).is_ok());
  }
  // Chain: full(0) inc(1) inc(2) full(3) inc(4); truncate drops 0-2.
  ASSERT_TRUE(ckpt->truncate_before_last_full().is_ok());
  EXPECT_EQ(ckpt->chain().size(), 2u);
  EXPECT_EQ(ckpt->chain()[0].kind, Kind::kFull);
  auto keys = storage_->list();
  ASSERT_TRUE(keys.is_ok());
  EXPECT_EQ(keys->size(), 2u);
  // Restore still works from the truncated chain.
  EXPECT_TRUE(restore_chain(*storage_, 0).is_ok());
}

TEST_F(CheckpointTest, MaterializeRebuildsAddressSpace) {
  auto a = space_.map(3 * page_size(), AreaKind::kHeap, "field");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 11);
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());

  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());

  ExplicitEngine engine2;
  AddressSpace space2(engine2, "recovered");
  auto mapping = materialize(*state, space2);
  ASSERT_TRUE(mapping.is_ok());
  ASSERT_EQ(mapping->size(), 1u);
  auto span2 = space2.block_span(mapping->at(a->id));
  ASSERT_TRUE(span2.is_ok());
  EXPECT_EQ(std::memcmp(span2->data(), a->mem.data(), a->mem.size()), 0);
  EXPECT_EQ(space2.blocks()[0].name, "field");
}

TEST_F(CheckpointTest, RestoreMissingRankFails) {
  EXPECT_EQ(restore_chain(*storage_, 42).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CheckpointTest, StorageFaultSurfacesAsError) {
  auto a = space_.map(64 * page_size(), AreaKind::kHeap, "big");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 77);  // incompressible: every page is payload
  storage::FaultyBackend faulty(*storage_, /*fail_after_bytes=*/page_size());
  auto ckpt = Checkpointer::create(space_, &faulty).value();
  auto meta = ckpt->checkpoint_full(0.0);
  EXPECT_FALSE(meta.is_ok());
  EXPECT_EQ(meta.status().code(), ErrorCode::kIoError);
  EXPECT_TRUE(ckpt->chain().empty());
  // The aborted object must not be visible.
  EXPECT_FALSE(storage_->exists(checkpoint_key(0, 0)));
}

namespace {

/// Fault injector without atomic abort: when armed, the Nth write
/// fails AND the partial object is committed anyway — modelling sinks
/// (object stores, raw devices) that keep partial data on error.
class LeakyFaultBackend final : public storage::StorageBackend {
 public:
  explicit LeakyFaultBackend(storage::StorageBackend& inner)
      : inner_(inner) {}

  /// Fail the write after this many successful ones; -1 = healthy.
  int fail_after_writes = -1;

  Result<std::unique_ptr<storage::Writer>> create(
      const std::string& key) override {
    auto w = inner_.create(key);
    if (!w.is_ok()) return w.status();
    return std::unique_ptr<storage::Writer>(
        new LeakyWriter(std::move(*w), this));
  }
  Result<std::unique_ptr<storage::Reader>> open(
      const std::string& key) override {
    return inner_.open(key);
  }
  Status remove(const std::string& key) override {
    return inner_.remove(key);
  }
  Result<std::vector<std::string>> list() override { return inner_.list(); }
  bool exists(const std::string& key) override { return inner_.exists(key); }
  std::uint64_t total_bytes_stored() const noexcept override {
    return inner_.total_bytes_stored();
  }

 private:
  class LeakyWriter final : public storage::Writer {
   public:
    LeakyWriter(std::unique_ptr<storage::Writer> inner,
                LeakyFaultBackend* owner)
        : inner_(std::move(inner)), owner_(owner) {}
    Status write(std::span<const std::byte> data) override {
      if (owner_->fail_after_writes == 0) {
        (void)inner_->close();  // leak the partial object
        return io_error("injected write fault");
      }
      if (owner_->fail_after_writes > 0) --owner_->fail_after_writes;
      return inner_->write(data);
    }
    Status close() override { return inner_->close(); }
    std::uint64_t bytes_written() const noexcept override {
      return inner_->bytes_written();
    }

   private:
    std::unique_ptr<storage::Writer> inner_;
    LeakyFaultBackend* owner_;
  };

  storage::StorageBackend& inner_;
};

}  // namespace

TEST_F(CheckpointTest, FailedWriteCleansOrphanAndReusesSequence) {
  auto a = space_.map(8 * page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 5);
  LeakyFaultBackend leaky(*storage_);
  auto ckpt = Checkpointer::create(space_, &leaky).value();

  leaky.fail_after_writes = 3;  // die mid-object, after the header
  auto failed = ckpt->checkpoint_full(0.0);
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.status().code(), ErrorCode::kIoError);
  // The committed partial object must have been removed, the sequence
  // number rolled back, and the chain left untouched.
  EXPECT_FALSE(storage_->exists(checkpoint_key(0, 0)));
  EXPECT_EQ(ckpt->next_sequence(), 0u);
  EXPECT_TRUE(ckpt->chain().empty());

  // The retry reuses sequence 0 and the store ends up healthy.
  leaky.fail_after_writes = -1;
  auto meta = ckpt->checkpoint_full(1.0);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta->sequence, 0u);
  auto keys = storage_->list();
  ASSERT_TRUE(keys.is_ok());
  EXPECT_EQ(keys->size(), 1u);
  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());
  expect_blocks_equal(*state, space_);
}

// ------------------------------------------------------ factory validation

TEST_F(CheckpointTest, CreateRejectsNullBackend) {
  auto made = Checkpointer::create(space_, nullptr);
  ASSERT_FALSE(made.is_ok());
  EXPECT_EQ(made.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(made.status().to_string().find("null"), std::string::npos);
}

TEST_F(CheckpointTest, CreateRejectsBadEncodeThreads) {
  CheckpointerOptions opts;
  opts.encode_threads = 0;
  EXPECT_EQ(Checkpointer::create(space_, storage_.get(), opts)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  opts.encode_threads = -4;
  EXPECT_EQ(Checkpointer::create(space_, storage_.get(), opts)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  opts.encode_threads = kMaxEncodeThreads + 1;
  EXPECT_EQ(Checkpointer::create(space_, storage_.get(), opts)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  opts.encode_threads = kMaxEncodeThreads;
  EXPECT_TRUE(Checkpointer::create(space_, storage_.get(), opts).is_ok());
}

TEST_F(CheckpointTest, CreateRejectsOverflowedFullEvery) {
  CheckpointerOptions opts;
  // A negative int stuffed into the unsigned field — the classic
  // silent-overflow misuse the bound exists to catch.
  opts.full_every = static_cast<std::uint64_t>(-1);
  auto made = Checkpointer::create(space_, storage_.get(), opts);
  ASSERT_FALSE(made.is_ok());
  EXPECT_EQ(made.status().code(), ErrorCode::kInvalidArgument);
  opts.full_every = kMaxFullEvery;
  EXPECT_TRUE(Checkpointer::create(space_, storage_.get(), opts).is_ok());
}

TEST_F(CheckpointTest, CreatedCheckpointerWorks) {
  auto made = Checkpointer::create(space_, storage_.get());
  ASSERT_TRUE(made.is_ok());
  auto a = space_.map(2 * page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  fill_pattern(a->mem, 9);
  ASSERT_TRUE((*made)->checkpoint_full(0.0).is_ok());
  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());
  expect_blocks_equal(*state, space_);
}

// --------------------------------------------------- corruption detection

class CorruptionTest : public CheckpointTest {
 protected:
  /// Write a checkpoint, then return a mutated copy under a new key.
  std::string corrupt_copy(std::size_t flip_offset) {
    auto a = space_.map(2 * page_size(), AreaKind::kHeap, "a");
    EXPECT_TRUE(a.is_ok());
    fill_pattern(a->mem, 1);
    auto meta = ckpt_->checkpoint_full(0.0);
    EXPECT_TRUE(meta.is_ok());

    auto reader = storage_->open(meta->key);
    EXPECT_TRUE(reader.is_ok());
    std::vector<std::byte> data((*reader)->size());
    std::size_t off = 0;
    while (off < data.size()) {
      auto got = (*reader)->read({data.data() + off, data.size() - off});
      EXPECT_TRUE(got.is_ok());
      if (*got == 0) break;
      off += *got;
    }
    if (flip_offset < data.size()) {
      data[flip_offset] ^= std::byte{0xFF};
    }
    auto w = storage_->create("corrupt");
    EXPECT_TRUE(w.is_ok());
    EXPECT_TRUE((*w)->write(data).is_ok());
    EXPECT_TRUE((*w)->close().is_ok());
    return "corrupt";
  }
};

TEST_F(CorruptionTest, FlippedMagicDetected) {
  auto key = corrupt_copy(0);
  auto state = read_checkpoint_file(*storage_, key);
  EXPECT_EQ(state.status().code(), ErrorCode::kCorruption);
}

TEST_F(CorruptionTest, FlippedPayloadByteFailsCrc) {
  auto key = corrupt_copy(sizeof(FileHeader) + sizeof(BlockHeader) + 32);
  auto state = read_checkpoint_file(*storage_, key);
  EXPECT_EQ(state.status().code(), ErrorCode::kCorruption);
}

TEST_F(CorruptionTest, TruncatedFileDetected) {
  auto a = space_.map(2 * page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  auto meta = ckpt_->checkpoint_full(0.0);
  ASSERT_TRUE(meta.is_ok());

  auto reader = storage_->open(meta->key);
  ASSERT_TRUE(reader.is_ok());
  std::vector<std::byte> data((*reader)->size() / 2);
  auto got = (*reader)->read(data);
  ASSERT_TRUE(got.is_ok());
  auto w = storage_->create("truncated");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write({data.data(), *got}).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());

  auto state = read_checkpoint_file(*storage_, "truncated");
  EXPECT_EQ(state.status().code(), ErrorCode::kCorruption);
}

TEST_F(CorruptionTest, ValidFileParsesCleanly) {
  // Control: the un-mutated path parses fine (flip beyond file size).
  auto key = corrupt_copy(SIZE_MAX);
  EXPECT_TRUE(read_checkpoint_file(*storage_, key).is_ok());
}

}  // namespace
}  // namespace ickpt::checkpoint

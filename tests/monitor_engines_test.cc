// Monitor works identically across tracking engines (engine-generic
// wall-clock instrumentation).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/arena.h"
#include "core/monitor.h"

namespace ickpt {
namespace {

class MonitorEngineTest
    : public ::testing::TestWithParam<memtrack::EngineKind> {
 protected:
  void SetUp() override {
    if (GetParam() == memtrack::EngineKind::kSoftDirty &&
        !memtrack::soft_dirty_supported()) {
      GTEST_SKIP() << "soft-dirty unsupported";
    }
    if (GetParam() == memtrack::EngineKind::kUffd &&
        !memtrack::uffd_supported()) {
      GTEST_SKIP() << "userfaultfd-wp unsupported";
    }
  }
};

TEST_P(MonitorEngineTest, TracksSteadyWriter) {
  MonitorOptions options;
  options.engine = GetParam();
  options.timeslice = 0.04;
  auto monitor = Monitor::create(options);
  ASSERT_TRUE(monitor.is_ok()) << monitor.status().to_string();

  PageArena field(32 * page_size());
  field.prefault();
  ASSERT_TRUE((*monitor)->attach(field.span(), "field").is_ok());
  ASSERT_TRUE((*monitor)->start().is_ok());

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(180);
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::size_t p = 0; p < 8; ++p) {
      field.data()[p * page_size()] = std::byte{1};
      (*monitor)->tracker().note_write(field.data() + p * page_size(), 1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  (*monitor)->stop();

  auto stats = (*monitor)->ib_stats();
  ASSERT_GE(stats.samples, 2u);
  // Every slice should see exactly the 8 written pages.
  EXPECT_NEAR(stats.avg_iws, 8.0 * static_cast<double>(page_size()),
              2.0 * static_cast<double>(page_size()));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MonitorEngineTest,
    ::testing::Values(memtrack::EngineKind::kMProtect,
                      memtrack::EngineKind::kSoftDirty,
                      memtrack::EngineKind::kUffd,
                      memtrack::EngineKind::kExplicit),
    [](const auto& info) {
      return std::string(memtrack::to_string(info.param));
    });

}  // namespace
}  // namespace ickpt

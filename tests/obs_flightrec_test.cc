// Flight recorder: normal-path dumps (restore failure), the
// async-signal-safe crash path (forked child dying on SIGABRT), and
// the shared JSON shape both paths promise.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/page.h"
#include "memtrack/explicit_engine.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "region/address_space.h"
#include "storage/backend.h"
#include "tests/json_test_util.h"

namespace ickpt::obs {
namespace {

namespace fs = std::filesystem;
using testutil::JsonParser;
using testutil::JsonValue;

std::string make_temp_dir() {
  std::string tmpl = (fs::temp_directory_path() / "flightrec-XXXXXX").string();
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

std::vector<std::string> flightrec_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("flightrec-", 0) == 0) out.push_back(entry.path());
  }
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse a dump and assert the shape shared by both paths; returns the
/// parsed document.
JsonValue check_common_shape(const std::string& text) {
  JsonParser parser(text);
  JsonValue root = parser.parse();
  EXPECT_FALSE(parser.failed()) << text.substr(0, 400);
  EXPECT_EQ(root.kind, JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(root.object["flightrec"].number, 1.0);
  EXPECT_EQ(root.object["reason"].kind, JsonValue::Kind::kString);
  EXPECT_EQ(root.object["signal_context"].kind, JsonValue::Kind::kBool);
  EXPECT_GT(root.object["timestamp_unix_ns"].number, 0.0);
  EXPECT_EQ(root.object["metrics"].kind, JsonValue::Kind::kObject);
  auto& trace = root.object["trace"];
  EXPECT_EQ(trace.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(trace.object["events"].kind, JsonValue::Kind::kArray);
  return root;
}

bool events_contain(JsonValue& root, const std::string& name) {
  for (auto& e : root.object["trace"].object["events"].array) {
    if (e.object["name"].str == name) return true;
  }
  return false;
}

// Must run before anything configures the recorder (gtest executes
// tests in definition order within one binary).
TEST(FlightRecTest, UnconfiguredDumpIsANoop) {
  ASSERT_FALSE(flightrec::configured());
  EXPECT_EQ(flightrec::dump("nothing armed"), "");
  flightrec::dump_from_signal("nothing armed");  // must not crash
}

TEST(FlightRecTest, NormalDumpCarriesMetricsAndTrace) {
  const std::string dir = make_temp_dir();
  flightrec::configure(dir);
  ASSERT_TRUE(flightrec::configured());

  registry().counter("test.flightrec.counter").inc(7);
  const std::uint16_t id = trace_name("test.flightrec.span");
  start_tracing();
  {
    TraceSpan span(id, 11);
  }
  trace_instant(id, 22);
  TraceSpan open_span(id, 33);  // still in flight at dump time
  const std::string path = flightrec::dump("unit test reason \"quoted\"");
  open_span.end();
  stop_tracing();

  ASSERT_NE(path, "");
  EXPECT_EQ(path.rfind(dir, 0), 0u) << path;
  JsonValue root = check_common_shape(slurp(path));
  EXPECT_EQ(root.object["reason"].str, "unit test reason \"quoted\"");
  EXPECT_FALSE(root.object["signal_context"].boolean);
  // Full registry snapshot on the normal path.
  EXPECT_TRUE(root.object["metrics"].object.count("counters"));
  EXPECT_TRUE(events_contain(root, "test.flightrec.span"));
  // The in-flight span shows up as an unmatched begin.
  bool open_begin = false;
  for (auto& e : root.object["trace"].object["events"].array) {
    if (e.object["name"].str == "test.flightrec.span" &&
        e.object["phase"].str == "B" && e.object["arg0"].number == 33.0) {
      open_begin = true;
    }
  }
  EXPECT_TRUE(open_begin);
  fs::remove_all(dir);
}

TEST(FlightRecTest, RestoreFailureDumpsTheFailingSpan) {
  const std::string dir = make_temp_dir();
  auto storage = storage::make_memory_backend();

  // A healthy one-element chain...
  memtrack::ExplicitEngine engine;
  region::AddressSpace space(engine, "test");
  auto block = space.map(4 * page_size(), region::AreaKind::kHeap, "state");
  ASSERT_TRUE(block.is_ok());
  auto ckpt = checkpoint::Checkpointer::create(space, storage.get());
  ASSERT_TRUE(ckpt.is_ok());
  ASSERT_TRUE((*ckpt)->checkpoint_full(0.0).is_ok());

  // ...with its object clobbered in place.
  auto keys = storage->list();
  ASSERT_TRUE(keys.is_ok());
  ASSERT_FALSE(keys->empty());
  {
    auto writer = storage->create(keys->front());
    ASSERT_TRUE(writer.is_ok());
    std::vector<std::byte> garbage(64, std::byte{0xAA});
    ASSERT_TRUE((*writer)->write(garbage).is_ok());
    ASSERT_TRUE((*writer)->close().is_ok());
  }

  flightrec::configure(dir);
  start_tracing();
  auto before = flightrec_files(dir);
  auto state = checkpoint::restore_chain(*storage, 0);
  stop_tracing();
  ASSERT_FALSE(state.is_ok());

  auto after = flightrec_files(dir);
  ASSERT_EQ(after.size(), before.size() + 1);
  JsonValue root = check_common_shape(slurp(after.back()));
  EXPECT_NE(root.object["reason"].str.find("restore_chain failed"),
            std::string::npos);
  EXPECT_FALSE(root.object["signal_context"].boolean);
  EXPECT_TRUE(events_contain(root, "restore.fail"));
  fs::remove_all(dir);
}

TEST(FlightRecTest, CrashPathDumpsFromFatalSignal) {
  const std::string dir = make_temp_dir();
  // Arm everything in the parent: the child only takes the signal, so
  // the handler exercises the preallocated async-signal-safe path.
  flightrec::configure(dir);
  flightrec::install_crash_handler();
  const std::uint16_t id = trace_name("test.flightrec.crash");
  start_tracing();
  trace_instant(id, 99);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::raise(SIGABRT);
    ::_exit(42);  // unreachable: the handler re-raises with SIG_DFL
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  stop_tracing();
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  auto files = flightrec_files(dir);
  ASSERT_EQ(files.size(), 1u);
  JsonValue root = check_common_shape(slurp(files.front()));
  EXPECT_EQ(root.object["reason"].str, "SIGABRT");
  EXPECT_TRUE(root.object["signal_context"].boolean);
  // Signal path reads metrics through the lock-free accessors.
  EXPECT_TRUE(root.object["metrics"].object.count("counters"));
  EXPECT_TRUE(events_contain(root, "test.flightrec.crash"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ickpt::obs

#include "minimpi/request.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace ickpt::mpi {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(RequestTest, IrecvCompletesWhenMessageArrives) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::byte buf[16];
      auto req = irecv(comm, 1, 3, buf);
      // Overlap "computation" with the pending receive.
      double acc = 0;
      for (int i = 0; i < 1000; ++i) acc += i * 0.5;
      auto info = req.wait();
      ASSERT_TRUE(info.is_ok());
      EXPECT_EQ(info->bytes, 5u);
      EXPECT_EQ(std::memcmp(buf, "hello", 5), 0);
      EXPECT_GT(acc, 0);
    } else {
      isend(comm, 0, 3, as_bytes("hello"));
    }
  });
}

TEST(RequestTest, TestPollsWithoutBlocking) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::byte buf[8];
      auto req = irecv(comm, 1, 9, buf);
      // Signal readiness, then poll until completion.
      comm.send(1, 1, as_bytes("go"));
      while (!req.test()) {
        std::this_thread::yield();
      }
      auto info = req.wait();  // immediate after test() == true
      ASSERT_TRUE(info.is_ok());
      EXPECT_EQ(info->bytes, 4u);
    } else {
      std::byte go[4];
      ASSERT_TRUE(comm.recv(0, 1, go).is_ok());
      isend(comm, 0, 9, as_bytes("data"));
    }
  });
}

TEST(RequestTest, WaitAllGathersMultiplePosts) {
  Runtime::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(2,
                                               std::vector<std::byte>(8));
      std::vector<RecvRequest> reqs;
      reqs.push_back(irecv(comm, 1, 5, bufs[0]));
      reqs.push_back(irecv(comm, 2, 5, bufs[1]));
      ASSERT_TRUE(wait_all(reqs).is_ok());
      EXPECT_EQ(std::memcmp(bufs[0].data(), "from1", 5), 0);
      EXPECT_EQ(std::memcmp(bufs[1].data(), "from2", 5), 0);
    } else {
      isend(comm, 0, 5,
            as_bytes("from" + std::to_string(comm.rank())));
    }
  });
}

TEST(RequestTest, ErrorsPropagateThroughWait) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::byte tiny[2];
      auto req = irecv(comm, 1, 7, tiny);  // too small for the payload
      auto info = req.wait();
      EXPECT_FALSE(info.is_ok());
      EXPECT_EQ(info.status().code(), ErrorCode::kOutOfRange);
      // Drain the message so the world ends cleanly.
      std::byte big[32];
      ASSERT_TRUE(comm.recv(1, 7, big).is_ok());
    } else {
      isend(comm, 0, 7, as_bytes("way too large"));
    }
  });
}

TEST(RequestTest, EmptyRequestFailsGracefully) {
  RecvRequest req;
  EXPECT_FALSE(req.valid());
  EXPECT_FALSE(req.test());
  auto info = req.wait();
  EXPECT_EQ(info.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(RequestTest, RepeatedWaitReturnsSameResult) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::byte buf[8];
      auto req = irecv(comm, 1, 2, buf);
      auto a = req.wait();
      auto b = req.wait();
      ASSERT_TRUE(a.is_ok());
      ASSERT_TRUE(b.is_ok());
      EXPECT_EQ(a->bytes, b->bytes);
    } else {
      isend(comm, 0, 2, as_bytes("x"));
    }
  });
}

}  // namespace
}  // namespace ickpt::mpi

#!/usr/bin/env sh
# Validate BENCH_<name>.json records against the shape documented in
# docs/BENCH_SCHEMA.json.  CI runs this after the bench-smoke arms; it
# needs only jq, so the assertions below mirror the schema rather than
# invoking a JSON Schema validator.
#
# Usage: check_bench_json.sh FILE [FILE...]
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 BENCH_file.json [...]" >&2
  exit 2
fi

status=0
for f in "$@"; do
  if [ ! -f "$f" ]; then
    echo "FAIL $f: missing" >&2
    status=1
    continue
  fi
  if ! jq -e '
    (.bench | type == "string" and length > 0) and
    (.schema == 1) and
    (.scale | type == "number" and . > 0) and
    (.quick | type == "boolean") and
    (.hw_threads | type == "number" and . >= 1) and
    (.timestamp_unix | type == "number" and . >= 0) and
    (.arms | type == "array" and length > 0) and
    ([.arms[] |
        (.name | type == "string" and length > 0) and
        (.wall_s | type == "number" and . >= 0) and
        (.cpu_s | type == "number" and . >= 0) and
        (.bytes | type == "number" and . >= 0) and
        (.phases | type == "array") and
        ([.phases[]? |
            (.name | type == "string" and length > 0) and
            (.count | type == "number" and . >= 1) and
            (.total_ns | type == "number" and . >= 0)
         ] | all)
     ] | all)
  ' "$f" > /dev/null; then
    echo "FAIL $f: does not match docs/BENCH_SCHEMA.json" >&2
    status=1
    continue
  fi
  # Arm names must be unique or downstream joins silently mis-pair.
  if [ "$(jq -r '[.arms[].name] | length' "$f")" != \
       "$(jq -r '[.arms[].name] | unique | length' "$f")" ]; then
    echo "FAIL $f: duplicate arm names" >&2
    status=1
    continue
  fi
  # X10 (bench "crc") must always carry the portable baseline and the
  # zero-page arms, whatever kernels the host CPU offers — they are the
  # denominators every speedup claim divides by.
  if [ "$(jq -r '.bench' "$f")" = "crc" ]; then
    if ! jq -e '[.arms[].name] |
        (index("crc_soft_64k") != null) and
        (index("zero_page_scan_allzero") != null) and
        (index("zero_page_scan_dirty") != null)' "$f" > /dev/null; then
      echo "FAIL $f: crc bench missing baseline arms" >&2
      status=1
      continue
    fi
  fi
  # X8 (bench "encode") must carry the storage-sink arms, including the
  # many-small-objects pair that motivates the segment backend — and
  # the segment arm must actually beat the one-file-per-object path.
  if [ "$(jq -r '.bench' "$f")" = "encode" ]; then
    if ! jq -e '[.arms[].name] |
        (index("file_buffered_write") != null) and
        (index("file_direct_write") != null) and
        (index("segment_write") != null) and
        (index("smallobj_file") != null) and
        (index("smallobj_segment") != null)' "$f" > /dev/null; then
      echo "FAIL $f: encode bench missing storage-sink arms" >&2
      status=1
      continue
    fi
    if ! jq -e '
        ([.arms[] | select(.name == "smallobj_file")] | first | .wall_s) >
        ([.arms[] | select(.name == "smallobj_segment")] | first | .wall_s)
        ' "$f" > /dev/null; then
      echo "FAIL $f: smallobj_segment did not beat smallobj_file" >&2
      status=1
      continue
    fi
  fi
  # X9 (bench "restore") must carry both on-disk decode pairs.
  if [ "$(jq -r '.bench' "$f")" = "restore" ]; then
    if ! jq -e '[.arms[].name] |
        (any(startswith("file_chain"))) and
        (any(startswith("segment_chain")))' "$f" > /dev/null; then
      echo "FAIL $f: restore bench missing on-disk chain arms" >&2
      status=1
      continue
    fi
  fi
  # X11 (bench "net") must carry the segment-served arms.
  if [ "$(jq -r '.bench' "$f")" = "net" ]; then
    if ! jq -e '[.arms[].name] |
        (any(startswith("segment_put"))) and
        (any(startswith("segment_get")))' "$f" > /dev/null; then
      echo "FAIL $f: net bench missing segment-served arms" >&2
      status=1
      continue
    fi
  fi
  echo "OK   $f ($(jq -r '.arms | length' "$f") arms)"
done
exit $status

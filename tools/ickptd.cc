// ickptd — the network checkpoint store daemon.
//
//   ickptd --dir DIR [--backend file|segment] [--bind ADDR] [--port N]
//          [--port-file FILE] [--direct-io] [--max-inflight-mb N]
//          [--idle-timeout S] [--stats] [--trace FILE]
//
// Serves the wire protocol (docs/PROTOCOL.md) out of a store rooted
// at DIR — one file per object (the default) or a log-structured
// segment store (--backend segment) — on a single epoll thread.
// --port 0 (the default)
// binds an ephemeral port; the chosen port is printed on stdout and,
// with --port-file, written there too (how scripts and the bench
// harness find it).  SIGINT/SIGTERM stop the loop cleanly; --stats
// prints the net.* metrics snapshot on exit and --trace writes the
// per-request span trace as Chrome/Perfetto JSON.
#include <csignal>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

namespace {

using namespace ickpt;

net::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // one eventfd write
}

int run(int argc, char** argv) {
  std::string dir;
  std::string bind = "127.0.0.1";
  int port = 0;
  std::string port_file;
  bool direct_io = false;
  int max_inflight_mb = 4;
  double idle_timeout = 60.0;
  bool stats = false;
  std::string span_trace_path;
  bool help = false;

  std::string backend_name = "file";
  FlagSet flags("ickptd");
  flags.add_string("dir", &dir, "directory to serve (required)");
  flags.add_string("backend", &backend_name,
                   "store layout: file (one file per object) or "
                   "segment (log-structured segment store)");
  flags.add_string("bind", &bind, "address to listen on");
  flags.add_int("port", &port, "TCP port (0 = ephemeral)");
  flags.add_string("port-file", &port_file,
                   "write the bound port here (for scripts)");
  flags.add_bool("direct-io", &direct_io,
                 "write objects with O_DIRECT when the filesystem "
                 "allows it");
  flags.add_int("max-inflight-mb", &max_inflight_mb,
                "per-connection cap on queued response bytes");
  flags.add_double("idle-timeout", &idle_timeout,
                   "close connections idle this many seconds "
                   "(<= 0 disables)");
  flags.add_bool("stats", &stats, "print the metrics snapshot on exit");
  flags.add_string("trace", &span_trace_path,
                   "record span tracing and write Chrome/Perfetto "
                   "trace-event JSON here on exit");
  flags.add_bool("help", &help, "show this help");
  auto parsed = flags.parse(argc, argv, 1);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.to_string().c_str(),
                 flags.help().c_str());
    return 2;
  }
  if (help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "ickptd: --dir is required\n%s",
                 flags.help().c_str());
    return 2;
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "ickptd: --port out of range\n");
    return 2;
  }
  if (max_inflight_mb <= 0) {
    std::fprintf(stderr, "ickptd: --max-inflight-mb must be > 0\n");
    return 2;
  }

  if (backend_name != "file" && backend_name != "segment") {
    std::fprintf(stderr, "ickptd: unknown --backend '%s' "
                 "(want file or segment)\n", backend_name.c_str());
    return 2;
  }
  if (backend_name == "segment" && direct_io) {
    std::fprintf(stderr, "ickptd: --direct-io applies only to "
                 "--backend file\n");
    return 2;
  }

  auto backend = [&] {
    if (backend_name == "segment") {
      return storage::make_segment_backend(dir);
    }
    storage::FileBackendOptions file_options;
    file_options.direct_io = direct_io;
    return storage::make_file_backend(dir, file_options);
  }();
  if (!backend.is_ok()) {
    std::fprintf(stderr, "ickptd: %s\n",
                 backend.status().to_string().c_str());
    return 1;
  }

  net::ServerOptions options;
  options.bind = bind;
  options.port = static_cast<std::uint16_t>(port);
  options.max_inflight_bytes =
      static_cast<std::size_t>(max_inflight_mb) << 20;
  options.idle_timeout_s = idle_timeout;
  auto server = net::Server::create(**backend, options);
  if (!server.is_ok()) {
    std::fprintf(stderr, "ickptd: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ickptd: cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", (*server)->port());
    std::fclose(f);
  }
  std::printf("ickptd: serving %s on %s:%u\n", dir.c_str(), bind.c_str(),
              (*server)->port());
  std::fflush(stdout);

  if (!span_trace_path.empty()) obs::start_tracing();

  g_server = server->get();
  struct sigaction sa{};
  sa.sa_handler = handle_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  auto st = (*server)->serve();
  g_server = nullptr;
  if (!st.is_ok()) {
    std::fprintf(stderr, "ickptd: %s\n", st.to_string().c_str());
    return 1;
  }

  if (stats) {
    auto snap = obs::registry().snapshot();
    snap.table("ickptd metrics").print(std::cout);
    std::printf("%s\n", snap.to_json().c_str());
  }
  if (!span_trace_path.empty()) {
    obs::stop_tracing();
    auto trace_st = obs::write_chrome_trace(span_trace_path);
    if (!trace_st.is_ok()) {
      std::fprintf(stderr, "ickptd: span trace: %s\n",
                   trace_st.to_string().c_str());
      return 1;
    }
    std::printf("span trace  : %s\n", span_trace_path.c_str());
  }
  std::printf("ickptd: stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }

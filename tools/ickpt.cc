// ickpt — command-line front end to the library.
//
//   ickpt apps
//       List the calibrated applications and their paper targets.
//
//   ickpt study --app NAME [--timeslice S] [--ranks N] [--engine E]
//               [--scale F] [--run-vs S] [--csv FILE] [--phase S]
//               [--ckpt-dir DIR] [--encode-threads N] [--async]
//               [--no-compress] [--stats] [--trace FILE]
//       Run a feasibility study and print the measured
//       characterization, bandwidth requirement and verdict.
//       With --ckpt-dir it also writes a real full+incremental
//       checkpoint chain (parallel encode, optional async writer).
//       With --stats it appends the observability snapshot: fault
//       cost, per-stage checkpoint timing, storage metrics — as a
//       table and as JSON.  With --trace it records span tracing
//       (fault instants, encode shards, backend writes) and writes
//       Chrome/Perfetto trace-event JSON.  --write-trace saves the
//       dirty-page write trace for 'ickpt replay'.
//
//   ickpt stats [--iters N] [--json]
//       Self-benchmark the metrics layer (cost per counter increment,
//       histogram record, enabled and idle scoped timer, trace emit)
//       and print the resulting registry snapshot.
//
//   ickpt fsck DIR [--repair] [--backend B] [--trace FILE]
//       Verify every checkpoint chain in a local store directory
//       (file or segment layout; auto-detected by default).
//       With --repair, quarantine corrupt tails and orphans (moved
//       under DIR/quarantine/, never deleted) so every rank keeps its
//       newest restorable prefix, then re-verify.  An unhealthy store
//       leaves a flight-recorder dump under DIR.
//
//   ickpt replay TRACE.wt
//       Replay a saved write trace through the explicit engine and
//       print the IWS per slice.
//
//   ickpt put KEY FILE / get KEY [FILE] / ls / del KEY
//       Object-store operations against either a local store
//       (--dir DIR, file or segment layout via --backend) or a
//       running ickptd (--addr HOST:PORT, optional --tenant).
//       `get` without FILE streams to stdout.  The same
//       code path the Checkpointer uses, so a put/get round trip is
//       byte-exact.
//
// All flags go through common/flags: unknown flags, malformed values
// and unknown app/engine names are hard errors with exit code 2.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/distribution.h"
#include "analysis/feasibility.h"
#include "analysis/period.h"
#include "apps/catalog.h"
#include "checkpoint/inspect.h"
#include "common/arena.h"
#include "common/flags.h"
#include "common/table.h"
#include "common/units.h"
#include "core/study.h"
#include "net/remote_backend.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"
#include "trace/write_trace.h"

namespace {

using namespace ickpt;

int usage() {
  std::fprintf(stderr,
               "usage: ickpt apps\n"
               "       ickpt study --app NAME [--timeslice S] [--ranks N]\n"
               "                   [--engine mprotect|softdirty|uffd|explicit]\n"
               "                   [--scale F] [--run-vs S] [--phase S]\n"
               "                   [--csv FILE] [--trace FILE]\n"
               "                   [--write-trace FILE]\n"
               "                   [--ckpt-dir DIR] [--segment-store]\n"
               "                   [--encode-threads N]\n"
               "                   [--async] [--no-compress] [--stats]\n"
               "       ickpt stats [--iters N] [--json]\n"
               "       ickpt fsck DIR [--repair] [--backend B] "
               "[--trace FILE]\n"
               "       ickpt replay TRACE.wt\n"
               "       ickpt put KEY FILE (--dir DIR | --addr HOST:PORT)\n"
               "                   [--tenant T] [--trace FILE]\n"
               "       ickpt get KEY [FILE] (--dir DIR | --addr "
               "HOST:PORT)\n"
               "                   [--tenant T] [--trace FILE]\n"
               "       ickpt ls  (--dir DIR | --addr HOST:PORT) "
               "[--tenant T]\n"
               "       ickpt del KEY (--dir DIR | --addr HOST:PORT) "
               "[--tenant T]\n"
               "('ickpt <command> --help' lists every flag.)\n");
  return 2;
}

/// Shared exit path for flag errors: message, then the per-command
/// flag reference.
int flag_error(const Status& st, const FlagSet& flags) {
  std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
               flags.help().c_str());
  return 2;
}

Result<memtrack::EngineKind> parse_engine(const std::string& name) {
  if (name == "mprotect") return memtrack::EngineKind::kMProtect;
  if (name == "softdirty") return memtrack::EngineKind::kSoftDirty;
  if (name == "uffd") return memtrack::EngineKind::kUffd;
  if (name == "explicit") return memtrack::EngineKind::kExplicit;
  return invalid_argument("ickpt: unknown engine '" + name +
                          "' (expected mprotect|softdirty|uffd|explicit)");
}

void print_metrics(const obs::Snapshot& snap, const std::string& title) {
  snap.table(title).print(std::cout);
  std::printf("%s\n", snap.to_json().c_str());
}

/// Snapshot the span-trace ring into Chrome trace-event JSON at
/// `path`.  Returns the process exit code contribution (0 or 1).
int finish_span_trace(const std::string& path) {
  if (path.empty()) return 0;
  obs::stop_tracing();
  auto st = obs::write_chrome_trace(path);
  if (!st.is_ok()) {
    std::fprintf(stderr, "span trace: %s\n", st.to_string().c_str());
    return 1;
  }
  const obs::TraceRing* ring = obs::trace_ring();
  std::printf("span trace  : %s (%llu events%s; open in ui.perfetto.dev "
              "or chrome://tracing)\n",
              path.c_str(),
              static_cast<unsigned long long>(
                  ring != nullptr ? ring->emitted() : 0),
              ring != nullptr && ring->dropped() > 0 ? ", ring wrapped"
                                                     : "");
  return 0;
}

int cmd_apps(int argc, char** argv) {
  FlagSet flags("ickpt apps");
  auto st = flags.parse(argc, argv, 2);
  if (!st.is_ok()) return flag_error(st, flags);

  TextTable table("Calibrated applications");
  table.set_header({"Name", "Footprint max (MB)", "Period (s)",
                    "Overwrite %", "Avg IB@1s (MB/s)"});
  for (const auto& name : apps::catalog_names()) {
    auto t = apps::paper_targets(name).value();
    table.add_row({name, TextTable::num(t.footprint_max_mb),
                   TextTable::num(t.period_s, 2),
                   TextTable::num(t.overwrite_frac * 100, 0),
                   TextTable::num(t.avg_ib1_mb_s)});
  }
  for (const auto& name : apps::extra_app_names()) {
    auto period = apps::app_period(name);
    table.add_row({name + " (extra)", "-",
                   period.is_ok() ? TextTable::num(*period, 2) : "?", "-",
                   "-"});
  }
  table.print(std::cout);
  return 0;
}

int cmd_study(int argc, char** argv) {
  StudyConfig cfg;
  cfg.footprint_scale = 1.0 / 16.0;
  std::string engine_name = "mprotect";
  std::string csv_path;
  std::string write_trace_path;
  std::string span_trace_path;
  bool no_compress = false;
  bool want_stats = false;
  bool help = false;

  FlagSet flags("ickpt study");
  flags.add_string("app", &cfg.app, "application to study (see 'ickpt apps')");
  flags.add_double("timeslice", &cfg.timeslice, "sampling timeslice (s)");
  flags.add_int("ranks", &cfg.nprocs, "ranks to run (threads over minimpi)");
  flags.add_string("engine", &engine_name,
                   "dirty-page engine: mprotect|softdirty|uffd|explicit");
  flags.add_double("scale", &cfg.footprint_scale,
                   "footprint scale vs the paper's machines");
  flags.add_double("run-vs", &cfg.run_vs,
                   "virtual run length (s); 0 = auto");
  flags.add_double("phase", &cfg.sample_phase,
                   "offset of the first slice boundary (s)");
  flags.add_string("csv", &csv_path, "write rank 0's series to this CSV");
  flags.add_string("trace", &span_trace_path,
                   "record span tracing and write Chrome/Perfetto "
                   "trace-event JSON here");
  flags.add_string("write-trace", &write_trace_path,
                   "save rank 0's write trace ('ickpt replay' reads it)");
  flags.add_string("ckpt-dir", &cfg.checkpoint_dir,
                   "write a real checkpoint chain to this directory");
  flags.add_bool("segment-store", &cfg.segment_store,
                 "store the chain in a log-structured segment store "
                 "instead of one file per object");
  flags.add_int("encode-threads", &cfg.encode_threads,
                "page-encode worker threads");
  flags.add_bool("async", &cfg.async_writes,
                 "overlap backend I/O with computation");
  flags.add_bool("no-compress", &no_compress,
                 "disable per-page payload compression");
  flags.add_bool("stats", &want_stats,
                 "print the observability snapshot (table + JSON)");
  flags.add_bool("help", &help, "show this help");

  auto parsed = flags.parse(argc, argv, 2);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  cfg.compress = !no_compress;
  cfg.capture_trace = !write_trace_path.empty();
  if (!span_trace_path.empty()) obs::start_tracing();

  auto engine = parse_engine(engine_name);
  if (!engine.is_ok()) {
    std::fprintf(stderr, "%s\n", engine.status().to_string().c_str());
    return 2;
  }
  cfg.engine = *engine;
  // Validate the app name up front so a typo is a usage error (exit 2
  // like any other bad flag value), not a late study failure.
  if (auto period = apps::app_period(cfg.app); !period.is_ok()) {
    std::fprintf(stderr, "ickpt study: %s\n",
                 period.status().to_string().c_str());
    return 2;
  }

  auto r = run_study(cfg);
  if (!r.is_ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 r.status().to_string().c_str());
    return 1;
  }

  const double scale = cfg.footprint_scale;
  auto mb = [scale](double bytes) {
    return bytes / static_cast<double>(kMB) / scale;
  };
  std::printf("app         : %s (%s engine, timeslice %.2fs, %d rank%s)\n",
              cfg.app.c_str(),
              std::string(memtrack::to_string(cfg.engine)).c_str(),
              cfg.timeslice, cfg.nprocs, cfg.nprocs == 1 ? "" : "s");
  std::printf("iterations  : %llu (period %.2fs)\n",
              static_cast<unsigned long long>(r->iterations), r->period_s);
  std::printf("footprint   : max %.1f MB, avg %.1f MB (paper-equivalent)\n",
              mb(r->footprint.max_bytes), mb(r->footprint.avg_bytes));
  std::printf("IB          : avg %.1f MB/s, max %.1f MB/s\n",
              mb(r->ib.avg_ib), mb(r->ib.max_ib));
  auto q = analysis::ib_quantiles(r->per_rank[0]);
  std::printf("IB quantiles: p50 %.1f, p90 %.1f, p99 %.1f MB/s\n",
              mb(q.p50), mb(q.p90), mb(q.p99));
  std::printf("IWS ratio   : %.0f%% of footprint per slice\n",
              r->ib.avg_ratio * 100);

  auto est = analysis::detect_period(r->per_rank[0].iws_bytes_series(),
                                     cfg.timeslice);
  if (est.found) {
    std::printf("period det. : %.2fs (confidence %.2f)\n", est.period,
                est.confidence);
  }

  analysis::IBStats paper_eq;
  paper_eq.avg_ib = r->ib.avg_ib / scale;
  paper_eq.max_ib = r->ib.max_ib / scale;
  std::printf("feasibility : %s\n",
              analysis::describe(
                  analysis::assess_feasibility(paper_eq)).c_str());

  if (!cfg.checkpoint_dir.empty()) {
    const double written_mb =
        static_cast<double>(r->ckpt_bytes) / static_cast<double>(kMB);
    const double rate = r->ckpt_encode_seconds > 0
                            ? written_mb / r->ckpt_encode_seconds
                            : 0;
    std::printf(
        "checkpoints : %llu objects, %s, %.2fs in writer (%.0f MB/s, "
        "%d encode thread%s%s)\n",
        static_cast<unsigned long long>(r->ckpt_objects),
        format_bytes(r->ckpt_bytes).c_str(), r->ckpt_encode_seconds, rate,
        cfg.encode_threads, cfg.encode_threads == 1 ? "" : "s",
        cfg.async_writes ? ", async" : "");
  }

  if (!csv_path.empty()) {
    auto st = r->per_rank[0].write_csv(csv_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "csv: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("series csv  : %s\n", csv_path.c_str());
  }
  if (!write_trace_path.empty()) {
    auto st = r->write_trace.save(write_trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("write trace : %s (%zu events; 'ickpt replay' reads it)\n",
                write_trace_path.c_str(), r->write_trace.events().size());
  }
  if (finish_span_trace(span_trace_path) != 0) return 1;
  if (want_stats) print_metrics(r->metrics, "study metrics");
  return 0;
}

int cmd_stats(int argc, char** argv) {
  int iters = 1000000;
  bool json_only = false;
  bool help = false;
  FlagSet flags("ickpt stats");
  flags.add_int("iters", &iters, "iterations per micro-benchmark loop");
  flags.add_bool("json", &json_only, "print only the JSON snapshot");
  flags.add_bool("help", &help, "show this help");
  auto parsed = flags.parse(argc, argv, 2);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (iters < 1) {
    std::fprintf(stderr, "ickpt stats: --iters must be >= 1\n");
    return 2;
  }
  const auto n = static_cast<std::uint64_t>(iters);

  // Self-benchmark: the per-operation cost of each primitive the rest
  // of the system sprinkles on its hot paths (Section 6.5's
  // intrusiveness question, asked of the instrumentation itself).
  auto& reg = obs::registry();
  auto& counter = reg.counter("obs.bench.count");
  auto& hist = reg.histogram("obs.bench.value_ns", obs::Unit::kNanoseconds);
  auto& timed = reg.histogram("obs.bench.timed_ns", obs::Unit::kNanoseconds);

  auto per_op = [n](std::uint64_t t0, std::uint64_t t1) {
    return static_cast<double>(t1 - t0) / static_cast<double>(n);
  };

  std::uint64_t t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < n; ++i) counter.inc();
  const double counter_ns = per_op(t0, obs::now_ns());

  t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < n; ++i) hist.record(i & 0xFFFF);
  const double record_ns = per_op(t0, obs::now_ns());

  t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::ScopedTimer t(timed);
  }
  const double timer_ns = per_op(t0, obs::now_ns());

  obs::set_enabled(false);
  t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::ScopedTimer t(timed);
  }
  const double idle_ns = per_op(t0, obs::now_ns());
  obs::set_enabled(true);

  // Trace-emit cost: with tracing off (the always-on branch every
  // instrumented site pays) and on (ring emit).
  const std::uint16_t t_bench =
      obs::trace_name("obs.bench.emit", obs::TraceCat::kBench);
  t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < n; ++i) obs::trace_instant(t_bench, i);
  const double trace_off_ns = per_op(t0, obs::now_ns());

  obs::start_tracing();
  t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < n; ++i) obs::trace_instant(t_bench, i);
  const double trace_on_ns = per_op(t0, obs::now_ns());
  obs::stop_tracing();

  if (!json_only) {
    TextTable table("metrics layer self-benchmark (" +
                    std::to_string(n) + " ops each)");
    table.set_header({"Primitive", "ns/op"});
    table.add_row({"counter inc", TextTable::num(counter_ns, 1)});
    table.add_row({"histogram record", TextTable::num(record_ns, 1)});
    table.add_row({"scoped timer (enabled)", TextTable::num(timer_ns, 1)});
    table.add_row({"scoped timer (idle)", TextTable::num(idle_ns, 1)});
    table.add_row({"trace emit (tracing off)",
                   TextTable::num(trace_off_ns, 1)});
    table.add_row({"trace emit (tracing on)",
                   TextTable::num(trace_on_ns, 1)});
    table.print(std::cout);
  }

  auto snap = reg.snapshot();
  if (json_only) {
    std::printf("%s\n", snap.to_json().c_str());
  } else {
    print_metrics(snap, "registry snapshot");
  }
  return 0;
}

/// Local-store backend selection shared by fsck and the store ops:
/// "auto" sniffs the directory for segment files, "file"/"segment"
/// force the choice.
Result<std::unique_ptr<storage::StorageBackend>> open_local_store(
    const std::string& dir, const std::string& backend) {
  if (backend == "segment" ||
      (backend == "auto" && storage::segment_store_present(dir))) {
    return storage::make_segment_backend(dir);
  }
  if (backend != "auto" && backend != "file") {
    return invalid_argument("unknown --backend '" + backend +
                            "' (want file, segment or auto)");
  }
  return storage::make_file_backend(dir);
}

int cmd_fsck(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-') return usage();
  const char* dir = argv[2];

  bool repair = false;
  bool help = false;
  std::string span_trace_path;
  std::string backend_name = "auto";
  FlagSet flags("ickpt fsck DIR");
  flags.add_bool("repair", &repair,
                 "quarantine corrupt tails/orphans so every rank keeps "
                 "its newest restorable prefix");
  flags.add_string("backend", &backend_name,
                   "store layout: file|segment|auto (sniff the directory)");
  flags.add_string("trace", &span_trace_path,
                   "record span tracing and write Chrome/Perfetto "
                   "trace-event JSON here");
  flags.add_bool("help", &help, "show this help");
  auto parsed = flags.parse(argc, argv, 3);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (!span_trace_path.empty()) obs::start_tracing();
  // Arm the flight recorder: restore failures inside fsck leave a
  // post-mortem dump next to the objects being checked.
  obs::flightrec::configure(dir);

  auto backend = open_local_store(dir, backend_name);
  if (!backend.is_ok()) {
    std::fprintf(stderr, "fsck: %s\n",
                 backend.status().to_string().c_str());
    return 1;
  }

  if (repair) {
    auto rep = checkpoint::repair_store(**backend);
    if (!rep.is_ok()) {
      std::fprintf(stderr, "fsck --repair: %s\n",
                   rep.status().to_string().c_str());
      return 1;
    }
    for (const auto& d : rep->dropped) {
      std::printf("quarantined %s -> %s (%s)\n", d.key.c_str(),
                  d.quarantine_key.c_str(), d.reason.c_str());
    }
    for (const auto& [rank, upto] : rep->recovered_upto) {
      std::printf("rank %u: repaired, recoverable to seq %llu\n", rank,
                  static_cast<unsigned long long>(upto));
    }
    for (const auto& p : rep->problems) {
      std::printf("! %s\n", p.c_str());
    }
  }

  auto report = checkpoint::inspect_store(**backend);
  if (!report.is_ok()) {
    std::fprintf(stderr, "fsck: %s\n", report.status().to_string().c_str());
    return 1;
  }
  for (const auto& [rank, chain] : report->chains) {
    std::printf("rank %u: %zu checkpoint(s), %s, %s", rank,
                chain.elements.size(),
                format_bytes(chain.total_bytes).c_str(),
                chain.recoverable
                    ? ("recoverable to seq " +
                       std::to_string(chain.recoverable_upto))
                          .c_str()
                    : "NOT RECOVERABLE");
    std::printf("%s\n", chain.healthy() ? "" : "  [problems]");
    for (const auto& p : chain.problems) {
      std::printf("  ! %s\n", p.c_str());
    }
  }
  if (!report->commit_markers.empty()) {
    std::printf("committed global sequences: up to %llu\n",
                static_cast<unsigned long long>(
                    report->commit_markers.back()));
  }
  for (const auto& p : report->problems) {
    std::printf("! %s\n", p.c_str());
  }
  std::printf("store: %s\n", report->healthy() ? "HEALTHY" : "UNHEALTHY");
  if (!report->healthy()) {
    auto path = obs::flightrec::dump("fsck found the store unhealthy");
    if (!path.empty()) std::printf("flight recorder: %s\n", path.c_str());
  }
  if (finish_span_trace(span_trace_path) != 0) return 1;
  return report->healthy() ? 0 : 1;
}

// ------------------------------------------------------------- store ops

/// Shared target selection for put/get/ls/del: exactly one of a local
/// file-backend directory or a remote ickptd address.
struct StoreTarget {
  std::string dir;
  std::string addr;
  std::string backend = "auto";
  std::string tenant = "default";
  std::string span_trace_path;
  bool help = false;
};

void add_store_flags(FlagSet& flags, StoreTarget* target) {
  flags.add_string("dir", &target->dir, "local store directory");
  flags.add_string("backend", &target->backend,
                   "local store layout: file|segment|auto (sniff)");
  flags.add_string("addr", &target->addr, "remote ickptd HOST:PORT");
  flags.add_string("tenant", &target->tenant,
                   "tenant namespace on the daemon");
  flags.add_string("trace", &target->span_trace_path,
                   "record span tracing and write Chrome/Perfetto "
                   "trace-event JSON here");
  flags.add_bool("help", &target->help, "show this help");
}

Result<std::unique_ptr<storage::StorageBackend>> open_store(
    const StoreTarget& target) {
  if (target.dir.empty() == target.addr.empty()) {
    return invalid_argument(
        "ickpt: exactly one of --dir and --addr is required");
  }
  if (!target.dir.empty()) {
    return open_local_store(target.dir, target.backend);
  }
  ICKPT_ASSIGN_OR_RETURN(host_port, net::parse_host_port(target.addr));
  storage::RemoteBackendOptions options;
  options.host = host_port.first;
  options.port = host_port.second;
  options.tenant = target.tenant;
  return storage::make_remote_backend(options);
}

int store_error(const char* op, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", op, st.to_string().c_str());
  return 1;
}

int cmd_store_put(int argc, char** argv) {
  StoreTarget target;
  FlagSet flags("ickpt put KEY FILE");
  add_store_flags(flags, &target);
  flags.allow_positional(true);
  auto parsed = flags.parse(argc, argv, 2);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (target.help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (flags.positional().size() != 2) return usage();
  const std::string& key = flags.positional()[0];
  const std::string& file = flags.positional()[1];
  if (!target.span_trace_path.empty()) obs::start_tracing();

  auto store = open_store(target);
  if (!store.is_ok()) return store_error("put", store.status());
  std::FILE* in = std::fopen(file.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "put: cannot open %s\n", file.c_str());
    return 1;
  }
  int rc = [&] {
    obs::TraceSpan span(obs::trace_name("cli.put", obs::TraceCat::kNet));
    auto writer = (*store)->create(key);
    if (!writer.is_ok()) return store_error("put", writer.status());
    std::vector<std::byte> buf(1u << 20);
    for (;;) {
      const std::size_t got = std::fread(buf.data(), 1, buf.size(), in);
      if (got == 0) break;
      auto st = (*writer)->write({buf.data(), got});
      if (!st.is_ok()) return store_error("put", st);
    }
    if (std::ferror(in) != 0) {
      std::fprintf(stderr, "put: read error on %s\n", file.c_str());
      return 1;
    }
    const auto bytes = (*writer)->bytes_written();
    auto st = (*writer)->close();
    if (!st.is_ok()) return store_error("put", st);
    std::printf("put %s (%llu bytes)\n", key.c_str(),
                static_cast<unsigned long long>(bytes));
    return 0;
  }();
  std::fclose(in);
  if (rc == 0 && finish_span_trace(target.span_trace_path) != 0) rc = 1;
  return rc;
}

int cmd_store_get(int argc, char** argv) {
  StoreTarget target;
  FlagSet flags("ickpt get KEY [FILE]");
  add_store_flags(flags, &target);
  flags.allow_positional(true);
  auto parsed = flags.parse(argc, argv, 2);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (target.help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (flags.positional().empty() || flags.positional().size() > 2) {
    return usage();
  }
  const std::string& key = flags.positional()[0];
  const bool to_stdout = flags.positional().size() < 2;
  if (!target.span_trace_path.empty()) obs::start_tracing();

  auto store = open_store(target);
  if (!store.is_ok()) return store_error("get", store.status());
  std::FILE* out =
      to_stdout ? stdout : std::fopen(flags.positional()[1].c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "get: cannot write %s\n",
                 flags.positional()[1].c_str());
    return 1;
  }
  int rc = [&] {
    obs::TraceSpan span(obs::trace_name("cli.get", obs::TraceCat::kNet));
    auto reader = (*store)->open(key);
    if (!reader.is_ok()) return store_error("get", reader.status());
    std::vector<std::byte> buf(1u << 20);
    std::uint64_t total = 0;
    for (;;) {
      auto got = (*reader)->read(buf);
      if (!got.is_ok()) return store_error("get", got.status());
      if (*got == 0) break;
      if (std::fwrite(buf.data(), 1, *got, out) != *got) {
        std::fprintf(stderr, "get: short write\n");
        return 1;
      }
      total += *got;
    }
    if (!to_stdout) {
      std::printf("got %s (%llu bytes)\n", key.c_str(),
                  static_cast<unsigned long long>(total));
    }
    return 0;
  }();
  if (!to_stdout) std::fclose(out);
  if (rc == 0 && finish_span_trace(target.span_trace_path) != 0) rc = 1;
  return rc;
}

int cmd_store_ls(int argc, char** argv) {
  StoreTarget target;
  FlagSet flags("ickpt ls");
  add_store_flags(flags, &target);
  auto parsed = flags.parse(argc, argv, 2);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (target.help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (!target.span_trace_path.empty()) obs::start_tracing();

  auto store = open_store(target);
  if (!store.is_ok()) return store_error("ls", store.status());
  auto keys = [&] {
    obs::TraceSpan span(obs::trace_name("cli.ls", obs::TraceCat::kNet));
    return (*store)->list();
  }();
  if (!keys.is_ok()) return store_error("ls", keys.status());
  std::sort(keys->begin(), keys->end());
  for (const auto& key : *keys) std::printf("%s\n", key.c_str());
  if (finish_span_trace(target.span_trace_path) != 0) return 1;
  return 0;
}

int cmd_store_del(int argc, char** argv) {
  StoreTarget target;
  FlagSet flags("ickpt del KEY");
  add_store_flags(flags, &target);
  flags.allow_positional(true);
  auto parsed = flags.parse(argc, argv, 2);
  if (!parsed.is_ok()) return flag_error(parsed, flags);
  if (target.help) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  if (flags.positional().size() != 1) return usage();
  const std::string& key = flags.positional()[0];
  if (!target.span_trace_path.empty()) obs::start_tracing();

  auto store = open_store(target);
  if (!store.is_ok()) return store_error("del", store.status());
  auto st = [&] {
    obs::TraceSpan span(obs::trace_name("cli.del", obs::TraceCat::kNet));
    return (*store)->remove(key);
  }();
  if (!st.is_ok()) return store_error("del", st);
  std::printf("deleted %s\n", key.c_str());
  if (finish_span_trace(target.span_trace_path) != 0) return 1;
  return 0;
}

int cmd_replay(const char* path) {
  auto loaded = trace::WriteTrace::load(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "replay: %s\n",
                 loaded.status().to_string().c_str());
    return 1;
  }
  auto tracker = memtrack::make_tracker(memtrack::EngineKind::kExplicit);
  PageArena arena(loaded->region_pages() * page_size());
  auto iws = loaded->replay(**tracker, arena.span());
  if (!iws.is_ok()) {
    std::fprintf(stderr, "replay: %s\n", iws.status().to_string().c_str());
    return 1;
  }
  std::printf("%zu slices, region %zu pages, timeslice %.2fs\n",
              iws->size(), loaded->region_pages(), loaded->timeslice());
  for (std::size_t i = 0; i < iws->size(); ++i) {
    std::printf("slice %4zu: %zu pages (%s)\n", i, (*iws)[i],
                format_bytes((*iws)[i] * page_size()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "apps") return cmd_apps(argc, argv);
  if (cmd == "study") return cmd_study(argc, argv);
  if (cmd == "stats") return cmd_stats(argc, argv);
  if (cmd == "fsck") return cmd_fsck(argc, argv);
  if (cmd == "replay" && argc >= 3) return cmd_replay(argv[2]);
  if (cmd == "put") return cmd_store_put(argc, argv);
  if (cmd == "get") return cmd_store_get(argc, argv);
  if (cmd == "ls") return cmd_store_ls(argc, argv);
  if (cmd == "del") return cmd_store_del(argc, argv);
  return usage();
}

// ickpt — command-line front end to the library.
//
//   ickpt apps
//       List the calibrated applications and their paper targets.
//
//   ickpt study --app NAME [--timeslice S] [--ranks N] [--engine E]
//               [--scale F] [--run-vs S] [--csv FILE] [--phase S]
//               [--ckpt-dir DIR] [--encode-threads N] [--async]
//               [--no-compress]
//       Run a feasibility study and print the measured
//       characterization, bandwidth requirement and verdict.
//       With --ckpt-dir it also writes a real full+incremental
//       checkpoint chain (parallel encode, optional async writer).
//
//   ickpt fsck DIR
//       Verify every checkpoint chain in a file-backend directory.
//
//   ickpt replay TRACE.wt
//       Replay a saved write trace through the explicit engine and
//       print the IWS per slice.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <cstring>
#include <map>
#include <string>

#include "analysis/distribution.h"
#include "analysis/feasibility.h"
#include "analysis/period.h"
#include "apps/catalog.h"
#include "checkpoint/inspect.h"
#include "common/arena.h"
#include "common/table.h"
#include "common/units.h"
#include "core/study.h"
#include "storage/backend.h"
#include "trace/write_trace.h"

namespace {

using namespace ickpt;

int usage() {
  std::fprintf(stderr,
               "usage: ickpt apps\n"
               "       ickpt study --app NAME [--timeslice S] [--ranks N]\n"
               "                   [--engine mprotect|softdirty|uffd|explicit]\n"
               "                   [--scale F] [--run-vs S] [--phase S]\n"
               "                   [--csv FILE] [--trace FILE]\n"
               "                   [--ckpt-dir DIR] [--encode-threads N]\n"
               "                   [--async] [--no-compress]\n"
               "       ickpt fsck DIR\n"
               "       ickpt replay TRACE.wt\n");
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const std::string name = argv[i] + 2;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[name] = argv[++i];
    } else {
      flags[name] = "1";  // valueless boolean flag (--async)
    }
  }
  return flags;
}

int cmd_apps() {
  TextTable table("Calibrated applications");
  table.set_header({"Name", "Footprint max (MB)", "Period (s)",
                    "Overwrite %", "Avg IB@1s (MB/s)"});
  for (const auto& name : apps::catalog_names()) {
    auto t = apps::paper_targets(name).value();
    table.add_row({name, TextTable::num(t.footprint_max_mb),
                   TextTable::num(t.period_s, 2),
                   TextTable::num(t.overwrite_frac * 100, 0),
                   TextTable::num(t.avg_ib1_mb_s)});
  }
  for (const auto& name : apps::extra_app_names()) {
    auto period = apps::app_period(name);
    table.add_row({name + " (extra)", "-",
                   period.is_ok() ? TextTable::num(*period, 2) : "?", "-",
                   "-"});
  }
  table.print(std::cout);
  return 0;
}

int cmd_study(int argc, char** argv) {
  auto flags = parse_flags(argc, argv, 2);
  StudyConfig cfg;
  cfg.footprint_scale = 1.0 / 16.0;
  if (auto it = flags.find("app"); it != flags.end()) cfg.app = it->second;
  if (auto it = flags.find("timeslice"); it != flags.end()) {
    cfg.timeslice = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("ranks"); it != flags.end()) {
    cfg.nprocs = std::atoi(it->second.c_str());
  }
  if (auto it = flags.find("scale"); it != flags.end()) {
    cfg.footprint_scale = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("run-vs"); it != flags.end()) {
    cfg.run_vs = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("phase"); it != flags.end()) {
    cfg.sample_phase = std::atof(it->second.c_str());
  }
  std::string trace_path;
  if (auto it = flags.find("trace"); it != flags.end()) {
    trace_path = it->second;
    cfg.capture_trace = true;
  }
  if (auto it = flags.find("ckpt-dir"); it != flags.end()) {
    cfg.checkpoint_dir = it->second;
  }
  if (auto it = flags.find("encode-threads"); it != flags.end()) {
    cfg.encode_threads = std::max(1, std::atoi(it->second.c_str()));
  }
  if (flags.count("async") != 0) cfg.async_writes = true;
  if (flags.count("no-compress") != 0) cfg.compress = false;
  if (auto it = flags.find("engine"); it != flags.end()) {
    const std::string& e = it->second;
    if (e == "mprotect") {
      cfg.engine = memtrack::EngineKind::kMProtect;
    } else if (e == "softdirty") {
      cfg.engine = memtrack::EngineKind::kSoftDirty;
    } else if (e == "uffd") {
      cfg.engine = memtrack::EngineKind::kUffd;
    } else if (e == "explicit") {
      cfg.engine = memtrack::EngineKind::kExplicit;
    } else {
      std::fprintf(stderr, "unknown engine '%s'\n", e.c_str());
      return 2;
    }
  }

  auto r = run_study(cfg);
  if (!r.is_ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 r.status().to_string().c_str());
    return 1;
  }

  const double scale = cfg.footprint_scale;
  auto mb = [scale](double bytes) {
    return bytes / static_cast<double>(kMB) / scale;
  };
  std::printf("app         : %s (%s engine, timeslice %.2fs, %d rank%s)\n",
              cfg.app.c_str(),
              std::string(memtrack::to_string(cfg.engine)).c_str(),
              cfg.timeslice, cfg.nprocs, cfg.nprocs == 1 ? "" : "s");
  std::printf("iterations  : %llu (period %.2fs)\n",
              static_cast<unsigned long long>(r->iterations), r->period_s);
  std::printf("footprint   : max %.1f MB, avg %.1f MB (paper-equivalent)\n",
              mb(r->footprint.max_bytes), mb(r->footprint.avg_bytes));
  std::printf("IB          : avg %.1f MB/s, max %.1f MB/s\n",
              mb(r->ib.avg_ib), mb(r->ib.max_ib));
  auto q = analysis::ib_quantiles(r->per_rank[0]);
  std::printf("IB quantiles: p50 %.1f, p90 %.1f, p99 %.1f MB/s\n",
              mb(q.p50), mb(q.p90), mb(q.p99));
  std::printf("IWS ratio   : %.0f%% of footprint per slice\n",
              r->ib.avg_ratio * 100);

  auto est = analysis::detect_period(r->per_rank[0].iws_bytes_series(),
                                     cfg.timeslice);
  if (est.found) {
    std::printf("period det. : %.2fs (confidence %.2f)\n", est.period,
                est.confidence);
  }

  analysis::IBStats paper_eq;
  paper_eq.avg_ib = r->ib.avg_ib / scale;
  paper_eq.max_ib = r->ib.max_ib / scale;
  std::printf("feasibility : %s\n",
              analysis::describe(
                  analysis::assess_feasibility(paper_eq)).c_str());

  if (!cfg.checkpoint_dir.empty()) {
    const double written_mb =
        static_cast<double>(r->ckpt_bytes) / static_cast<double>(kMB);
    const double rate = r->ckpt_encode_seconds > 0
                            ? written_mb / r->ckpt_encode_seconds
                            : 0;
    std::printf(
        "checkpoints : %llu objects, %s, %.2fs in writer (%.0f MB/s, "
        "%d encode thread%s%s)\n",
        static_cast<unsigned long long>(r->ckpt_objects),
        format_bytes(r->ckpt_bytes).c_str(), r->ckpt_encode_seconds, rate,
        cfg.encode_threads, cfg.encode_threads == 1 ? "" : "s",
        cfg.async_writes ? ", async" : "");
  }

  if (auto it = flags.find("csv"); it != flags.end()) {
    auto st = r->per_rank[0].write_csv(it->second);
    if (!st.is_ok()) {
      std::fprintf(stderr, "csv: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("series csv  : %s\n", it->second.c_str());
  }
  if (!trace_path.empty()) {
    auto st = r->write_trace.save(trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("write trace : %s (%zu events; 'ickpt replay' reads it)\n",
                trace_path.c_str(), r->write_trace.events().size());
  }
  return 0;
}

int cmd_fsck(const char* dir) {
  auto backend = storage::make_file_backend(dir);
  if (!backend.is_ok()) {
    std::fprintf(stderr, "fsck: %s\n",
                 backend.status().to_string().c_str());
    return 1;
  }
  auto report = checkpoint::inspect_store(**backend);
  if (!report.is_ok()) {
    std::fprintf(stderr, "fsck: %s\n", report.status().to_string().c_str());
    return 1;
  }
  for (const auto& [rank, chain] : report->chains) {
    std::printf("rank %u: %zu checkpoint(s), %s, %s", rank,
                chain.elements.size(),
                format_bytes(chain.total_bytes).c_str(),
                chain.recoverable
                    ? ("recoverable to seq " +
                       std::to_string(chain.recoverable_upto))
                          .c_str()
                    : "NOT RECOVERABLE");
    std::printf("%s\n", chain.healthy() ? "" : "  [problems]");
    for (const auto& p : chain.problems) {
      std::printf("  ! %s\n", p.c_str());
    }
  }
  if (!report->commit_markers.empty()) {
    std::printf("committed global sequences: up to %llu\n",
                static_cast<unsigned long long>(
                    report->commit_markers.back()));
  }
  for (const auto& p : report->problems) {
    std::printf("! %s\n", p.c_str());
  }
  std::printf("store: %s\n", report->healthy() ? "HEALTHY" : "UNHEALTHY");
  return report->healthy() ? 0 : 1;
}

int cmd_replay(const char* path) {
  auto loaded = trace::WriteTrace::load(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "replay: %s\n",
                 loaded.status().to_string().c_str());
    return 1;
  }
  auto tracker = memtrack::make_tracker(memtrack::EngineKind::kExplicit);
  PageArena arena(loaded->region_pages() * page_size());
  auto iws = loaded->replay(**tracker, arena.span());
  if (!iws.is_ok()) {
    std::fprintf(stderr, "replay: %s\n", iws.status().to_string().c_str());
    return 1;
  }
  std::printf("%zu slices, region %zu pages, timeslice %.2fs\n",
              iws->size(), loaded->region_pages(), loaded->timeslice());
  for (std::size_t i = 0; i < iws->size(); ++i) {
    std::printf("slice %4zu: %zu pages (%s)\n", i, (*iws)[i],
                format_bytes((*iws)[i] * page_size()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "apps") return cmd_apps();
  if (cmd == "study") return cmd_study(argc, argv);
  if (cmd == "fsck" && argc >= 3) return cmd_fsck(argv[2]);
  if (cmd == "replay" && argc >= 3) return cmd_replay(argv[2]);
  return usage();
}

#!/usr/bin/env bash
# End-to-end daemon smoke test: start ickptd on an ephemeral loopback
# port, drive a traced put/get/ls/del round trip with the ickpt CLI,
# compare bytes, and shut the daemon down cleanly.
#
#   tools/net_smoke.sh ICKPTD_BIN ICKPT_BIN [WORKDIR]
#
# Exits nonzero on any mismatch, protocol error, or unclean shutdown.
set -euo pipefail

ICKPTD=${1:?usage: net_smoke.sh ICKPTD_BIN ICKPT_BIN [WORKDIR]}
ICKPT=${2:?usage: net_smoke.sh ICKPTD_BIN ICKPT_BIN [WORKDIR]}
WORK=${3:-$(mktemp -d)}
STORE="$WORK/store"
PORT_FILE="$WORK/port"
DAEMON_LOG="$WORK/ickptd.log"
mkdir -p "$STORE"

cleanup() {
  if [[ -n "${DAEMON_PID:-}" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

"$ICKPTD" --dir "$STORE" --port 0 --port-file "$PORT_FILE" --stats \
  > "$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the port file (the daemon writes it after bind).
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  kill -0 "$DAEMON_PID" || { cat "$DAEMON_LOG"; exit 1; }
  sleep 0.05
done
[[ -s "$PORT_FILE" ]] || { echo "no port file"; cat "$DAEMON_LOG"; exit 1; }
ADDR="127.0.0.1:$(cat "$PORT_FILE")"
echo "daemon at $ADDR"

# A payload with structure (not all-zero) spanning several chunks.
head -c 1300000 /dev/urandom > "$WORK/payload"

"$ICKPT" put smoke/obj-1 "$WORK/payload" --addr "$ADDR" \
  --trace "$WORK/put_trace.json"
"$ICKPT" get smoke/obj-1 "$WORK/payload.back" --addr "$ADDR" \
  --trace "$WORK/get_trace.json"
cmp "$WORK/payload" "$WORK/payload.back"
echo "round trip bytes match"

# Traces must be real Perfetto JSON with net-category events.
grep -q '"traceEvents"' "$WORK/put_trace.json"
grep -q '"cli.put"' "$WORK/put_trace.json"
grep -q '"cli.get"' "$WORK/get_trace.json"

LISTED=$("$ICKPT" ls --addr "$ADDR")
[[ "$LISTED" == "smoke/obj-1" ]] || { echo "ls mismatch: $LISTED"; exit 1; }

# The same object through a second tenant namespace is invisible.
OTHER=$("$ICKPT" ls --addr "$ADDR" --tenant other)
[[ -z "$OTHER" ]] || { echo "tenant leak: $OTHER"; exit 1; }

"$ICKPT" del smoke/obj-1 --addr "$ADDR"
[[ -z "$("$ICKPT" ls --addr "$ADDR")" ]] || { echo "del failed"; exit 1; }

# Local-dir mode drives the same subcommands without the daemon.
"$ICKPT" put smoke/local "$WORK/payload" --dir "$STORE"
"$ICKPT" get smoke/local "$WORK/payload.local" --dir "$STORE"
cmp "$WORK/payload" "$WORK/payload.local"

# Segment-store leg: the same round trip against the log-structured
# backend, with --backend auto detecting the flavor on read-back and
# fsck validating the store.
SEGSTORE="$WORK/segstore"
"$ICKPT" put smoke/seg-1 "$WORK/payload" --dir "$SEGSTORE" --backend segment
"$ICKPT" get smoke/seg-1 "$WORK/payload.seg" --dir "$SEGSTORE"
cmp "$WORK/payload" "$WORK/payload.seg"
ls "$SEGSTORE"/seg-*.seg > /dev/null || { echo "no segment files"; exit 1; }
FSCK_OUT=$("$ICKPT" fsck "$SEGSTORE")
echo "$FSCK_OUT" | grep -q "HEALTHY" || {
  echo "segment fsck not healthy:"; echo "$FSCK_OUT"; exit 1;
}
echo "segment store round trip + fsck OK"

# Clean shutdown; --stats prints the metrics snapshot, which must
# report zero protocol errors for this well-behaved exchange.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
unset DAEMON_PID
grep -q "ickptd: stopped" "$DAEMON_LOG"
grep -q '"net.protocol_errors":0' "$DAEMON_LOG" || {
  echo "unexpected protocol errors"; cat "$DAEMON_LOG"; exit 1;
}
echo "net smoke OK"

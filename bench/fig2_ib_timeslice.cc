// Reproduces Figure 2 (a-f): maximum and average IB required for
// checkpointing Sage-1000MB, Sweep3D, BT, SP, FT and LU as a function
// of the checkpoint timeslice (1 s .. 20 s).
#include "bench/bench_util.h"

#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table("Figure 2 - IB vs timeslice (MB/s, paper-equivalent)");
  table.set_header({"Application", "Timeslice (s)", "Avg IB", "Max IB"});

  for (const auto& name : apps::figure2_names()) {
    for (double tau : timeslice_sweep()) {
      StudyConfig cfg;
      cfg.app = name;
      cfg.timeslice = tau;
      cfg.footprint_scale = scale;
      if (quick_mode()) cfg.run_vs = std::max(40.0, 8 * tau);
      auto r = must_run(cfg);
      table.add_row({name, TextTable::num(tau, 0),
                     TextTable::num(paper_mb(r.ib.avg_ib, scale)),
                     TextTable::num(paper_mb(r.ib.max_ib, scale))});
    }
  }
  finish(table, "fig2_ib_timeslice.csv");
  return 0;
}

// Reproduces Figure 1: (a) IWS size and (b) data received per
// timeslice during the execution of Sage-1000MB, timeslice 1 s,
// including the initialization write peak the figure shows at t=0.
//
// Runs 4 ranks so the communication bursts of Figure 1(b) are real
// ghost-exchange traffic; the printed series is rank 0 (the paper
// plots one representative process, §6.1).
#include "bench/bench_util.h"

#include "analysis/bursts.h"
#include "analysis/period.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  StudyConfig cfg;
  cfg.app = "sage-1000";
  cfg.timeslice = 1.0;
  cfg.footprint_scale = scale;
  cfg.nprocs = 4;
  cfg.tracked_ranks = 1;
  cfg.include_init = true;
  cfg.run_vs = quick_mode() ? 160.0 : 500.0;  // the paper plots 0..500 s
  auto r = must_run(cfg);
  const auto& series = r.per_rank[0];

  // Figure 1(a)/(b): print one row per slice (downsampled to keep the
  // console readable; the CSV has every slice).
  TextTable table("Figure 1 - Sage-1000MB, timeslice 1 s (rank 0)");
  table.set_header({"t (s)", "IWS (MB, paper-eq)", "recv (MB, paper-eq)"});
  const std::size_t step = series.size() > 60 ? series.size() / 60 : 1;
  for (std::size_t i = 0; i < series.size(); i += step) {
    table.add_row({TextTable::num(series[i].t_end, 0),
                   TextTable::num(paper_mb(
                       static_cast<double>(series[i].iws_bytes), scale)),
                   TextTable::num(
                       paper_mb(static_cast<double>(series[i].recv_bytes),
                                scale),
                       2)});
  }
  finish(table, "fig1_timeseries_console.csv");
  auto st = series.write_csv("fig1_timeseries.csv");
  if (st.is_ok()) std::cout << "full series csv: fig1_timeseries.csv\n";

  // The qualitative claims of §6.2, checked numerically:
  // an initialization peak, then write bursts every ~145 s separated
  // by communication gaps.
  const auto& first = series[0];
  std::cout << "init peak: first-slice IWS/footprint = "
            << TextTable::num(first.iws_footprint_ratio() * 100, 0)
            << "%\n";
  auto est = analysis::detect_period(series.iws_bytes_series(), 1.0);
  if (est.found) {
    std::cout << "detected processing-burst period: "
              << TextTable::num(est.period, 0) << " s (paper: 145 s)\n";
  }
  auto seg = analysis::segment_bursts(series, /*skip_first=*/4);
  if (!seg.bursts.empty()) {
    std::cout << "bursts: " << seg.bursts.size() << ", mean burst "
              << TextTable::num(seg.mean_burst_s, 0) << " s, mean gap "
              << TextTable::num(seg.mean_gap_s, 0) << " s, duty cycle "
              << TextTable::num(seg.duty_cycle * 100, 0) << "%\n";
  }
  return 0;
}

// Reproduces Table 3: "Characteristics of the Main Iteration" — the
// iteration period (detected automatically from the IWS series via
// autocorrelation, paper §6.2) and the fraction of the memory
// footprint overwritten per iteration (measured by sampling with
// timeslice == period, so each slice's IWS is the per-iteration
// union).
#include "bench/bench_util.h"

#include <algorithm>

#include "analysis/period.h"
#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

/// A sampling resolution that puts ~10+ slices inside one period.
double detection_timeslice(double period) {
  if (period >= 10) return 1.0;
  if (period >= 2) return 0.25;
  return std::max(period / 10.0, 0.02);
}

}  // namespace

int main() {
  const double scale = bench_scale();
  TextTable table("Table 3 - Characteristics of the Main Iteration");
  table.set_header({"Application", "Period s (paper)", "Period s (detected)",
                    "Overwritten % (paper)", "Overwritten % (measured)"});

  for (const auto& name : apps::catalog_names()) {
    auto t = apps::paper_targets(name).value();

    // Pass 1: detect the period from the IWS series.
    StudyConfig detect_cfg;
    detect_cfg.app = name;
    detect_cfg.timeslice = detection_timeslice(t.period_s);
    detect_cfg.footprint_scale = scale;
    detect_cfg.run_vs =
        std::min(quick_mode() ? 6.0 : 10.0 * t.period_s, 700.0);
    auto detect_run = must_run(detect_cfg);
    auto est = analysis::detect_period(
        detect_run.per_rank[0].iws_bytes_series(), detect_cfg.timeslice);
    std::string detected =
        est.found ? TextTable::num(est.period, 2) : "n/a";

    // Pass 2: overwrite fraction at timeslice == period.
    StudyConfig ow_cfg;
    ow_cfg.app = name;
    ow_cfg.timeslice = t.period_s;
    ow_cfg.footprint_scale = scale;
    ow_cfg.run_vs = std::min((quick_mode() ? 6.0 : 12.0) * t.period_s, 900.0);
    auto ow_run = must_run(ow_cfg);

    table.add_row({name, TextTable::num(t.period_s, 2), detected,
                   TextTable::num(t.overwrite_frac * 100, 0),
                   TextTable::num(ow_run.ib.avg_ratio * 100, 0)});
  }
  finish(table, "table3_iteration.csv");
  return 0;
}

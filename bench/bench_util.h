// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench prints the paper's rows (plus paper-reference values
// where the paper states them), writes a CSV next to the binary, and
// honours two environment variables:
//
//   ICKPT_BENCH_SCALE   footprint scale (default 1/16)
//   ICKPT_BENCH_QUICK   if set non-empty, shorter runs / fewer points
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "core/study.h"

namespace ickpt::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ICKPT_BENCH_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0 / 16.0;
}

inline bool quick_mode() {
  const char* env = std::getenv("ICKPT_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// Unscale a measured byte quantity back to paper-equivalent MB.
inline double paper_mb(double bytes, double scale) {
  return bytes / static_cast<double>(kMB) / scale;
}

inline StudyResult must_run(StudyConfig cfg) {
  auto r = run_study(cfg);
  if (!r.is_ok()) {
    std::cerr << "study failed for " << cfg.app << ": "
              << r.status().to_string() << "\n";
    std::exit(1);
  }
  return std::move(r.value());
}

inline void finish(TextTable& table, const std::string& csv_name) {
  table.print(std::cout);
  if (table.write_csv(csv_name)) {
    std::cout << "csv: " << csv_name << "\n";
  }
}

/// Timeslices used by the figure sweeps (paper: 1 s .. 20 s).
inline std::vector<double> timeslice_sweep() {
  if (quick_mode()) return {1, 5, 20};
  return {1, 2, 5, 10, 15, 20};
}

}  // namespace ickpt::bench

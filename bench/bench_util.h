// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench prints the paper's rows (plus paper-reference values
// where the paper states them), writes a CSV next to the binary, and
// honours two environment variables:
//
//   ICKPT_BENCH_SCALE   footprint scale (default 1/16)
//   ICKPT_BENCH_QUICK   if set non-empty, shorter runs / fewer points
//
// Benches that take command-line flags declare them through
// common/flags (BenchArgs binds --scale/--quick with the env values as
// defaults); unknown flags are hard errors.
//
// Machine-readable telemetry: a harness that wraps its arms in
// BenchJson::run_arm writes BENCH_<name>.json next to the CSV — one
// record per arm with wall/cpu seconds, bytes processed and per-phase
// span rollups from the trace ring (docs/OBSERVABILITY.md documents
// the schema; CI validates it).  --trace FILE additionally saves the
// whole run as a Chrome/Perfetto trace.
#pragma once

#include <ctime>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "core/study.h"
#include "obs/trace.h"

namespace ickpt::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ICKPT_BENCH_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0 / 16.0;
}

inline bool quick_mode() {
  const char* env = std::getenv("ICKPT_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// The standard bench knobs as typed flags; the environment variables
/// remain the defaults so existing invocations keep working.
struct BenchArgs {
  double scale = bench_scale();
  bool quick = quick_mode();
  std::string trace;  ///< --trace FILE: Chrome span trace of the run

  void register_flags(FlagSet& flags) {
    flags.add_double("scale", &scale,
                     "footprint scale (default: env ICKPT_BENCH_SCALE)");
    flags.add_bool("quick", &quick,
                   "shorter runs (default: env ICKPT_BENCH_QUICK)");
    flags.add_string("trace", &trace,
                     "write a Chrome/Perfetto span trace to FILE");
  }
};

/// Parse or die: benches have no error path worth recovering.
inline void parse_or_exit(FlagSet& flags, int argc, char* const* argv) {
  auto st = flags.parse(argc, argv, 1);
  if (!st.is_ok()) {
    std::cerr << st.to_string() << "\n" << flags.help();
    std::exit(2);
  }
}

/// Unscale a measured byte quantity back to paper-equivalent MB.
inline double paper_mb(double bytes, double scale) {
  return bytes / static_cast<double>(kMB) / scale;
}

inline StudyResult must_run(StudyConfig cfg) {
  auto r = run_study(cfg);
  if (!r.is_ok()) {
    std::cerr << "study failed for " << cfg.app << ": "
              << r.status().to_string() << "\n";
    std::exit(1);
  }
  return std::move(r.value());
}

inline void finish(TextTable& table, const std::string& csv_name) {
  table.print(std::cout);
  if (table.write_csv(csv_name)) {
    std::cout << "csv: " << csv_name << "\n";
  }
}

/// CPU time consumed by the whole process (all threads) so far.
inline double process_cpu_seconds() {
  std::timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Machine-readable bench results: one record per measured arm,
/// written as BENCH_<bench>.json (schema version 1):
///
///   {"bench":"encode","schema":1,"scale":0.0625,"quick":false,
///    "hw_threads":4,"timestamp_unix":1754650000,
///    "arms":[{"name":"t4_compress_sync","wall_s":1.2,"cpu_s":4.1,
///             "bytes":201326592,
///             "phases":[{"name":"ckpt.encode_shard","count":96,
///                        "total_ns":812345678}]}]}
///
/// Construction turns span tracing on; each run_arm attributes the
/// events emitted while its body ran (by ring sequence number) and
/// rolls completed spans up into per-phase totals.  wall_s/cpu_s cover
/// the whole arm body — repetitions included — so rates derived from
/// them divide by the total bytes the arm actually pushed.
class BenchJson {
 public:
  BenchJson(std::string bench, const BenchArgs& args)
      : bench_(std::move(bench)), scale_(args.scale), quick_(args.quick) {
    obs::start_tracing();
  }

  /// Measure `fn` as one arm processing `bytes` bytes.
  template <typename F>
  void run_arm(const std::string& name, std::uint64_t bytes, F&& fn) {
    const obs::TraceRing* ring = obs::trace_ring();
    const std::uint64_t seq0 = ring != nullptr ? ring->emitted() : 0;
    const double cpu0 = process_cpu_seconds();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    Arm arm;
    arm.name = name;
    arm.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    arm.cpu_s = process_cpu_seconds() - cpu0;
    arm.bytes = bytes;
    if (ring != nullptr) {
      auto events = ring->snapshot();
      std::erase_if(events,
                    [seq0](const obs::TraceEvent& e) { return e.seq < seq0; });
      arm.phases = obs::rollup_spans(events);
    }
    arms_.push_back(std::move(arm));
  }

  /// Write BENCH_<bench>.json next to the binary (like the CSVs) and,
  /// when --trace was given, the Chrome trace of the whole run.
  void write(const BenchArgs& args) const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      out << to_json() << "\n";
      std::cout << "bench json: " << path << "\n";
    } else {
      std::cerr << "bench json: cannot write " << path << "\n";
    }
    if (!args.trace.empty()) {
      auto st = obs::write_chrome_trace(args.trace);
      if (st.is_ok()) {
        std::cout << "span trace: " << args.trace
                  << " (open in ui.perfetto.dev)\n";
      } else {
        std::cerr << "span trace: " << st.to_string() << "\n";
      }
    }
  }

  std::string to_json() const {
    std::string j = "{\"bench\":\"" + escape(bench_) + "\",\"schema\":1";
    j += ",\"scale\":" + num(scale_);
    j += std::string(",\"quick\":") + (quick_ ? "true" : "false");
    j += ",\"hw_threads\":" +
         std::to_string(ThreadPool::hardware_threads());
    j += ",\"timestamp_unix\":" +
         std::to_string(static_cast<long long>(std::time(nullptr)));
    j += ",\"arms\":[";
    for (std::size_t i = 0; i < arms_.size(); ++i) {
      const Arm& a = arms_[i];
      if (i > 0) j += ",";
      j += "{\"name\":\"" + escape(a.name) + "\"";
      j += ",\"wall_s\":" + num(a.wall_s);
      j += ",\"cpu_s\":" + num(a.cpu_s);
      j += ",\"bytes\":" + std::to_string(a.bytes);
      j += ",\"phases\":[";
      for (std::size_t p = 0; p < a.phases.size(); ++p) {
        if (p > 0) j += ",";
        j += "{\"name\":\"" + escape(a.phases[p].name) + "\"";
        j += ",\"count\":" + std::to_string(a.phases[p].count);
        j += ",\"total_ns\":" + std::to_string(a.phases[p].total_ns) + "}";
      }
      j += "]}";
    }
    j += "]}";
    return j;
  }

 private:
  struct Arm {
    std::string name;
    double wall_s = 0;
    double cpu_s = 0;
    std::uint64_t bytes = 0;
    std::vector<obs::SpanRollup> phases;
  };

  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    return out;
  }

  std::string bench_;
  double scale_;
  bool quick_;
  std::vector<Arm> arms_;
};

/// Timeslices used by the figure sweeps (paper: 1 s .. 20 s).
inline std::vector<double> timeslice_sweep() {
  if (quick_mode()) return {1, 5, 20};
  return {1, 2, 5, 10, 15, 20};
}

}  // namespace ickpt::bench

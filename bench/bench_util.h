// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench prints the paper's rows (plus paper-reference values
// where the paper states them), writes a CSV next to the binary, and
// honours two environment variables:
//
//   ICKPT_BENCH_SCALE   footprint scale (default 1/16)
//   ICKPT_BENCH_QUICK   if set non-empty, shorter runs / fewer points
//
// Benches that take command-line flags declare them through
// common/flags (BenchArgs binds --scale/--quick with the env values as
// defaults); unknown flags are hard errors.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "common/units.h"
#include "core/study.h"

namespace ickpt::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ICKPT_BENCH_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0 / 16.0;
}

inline bool quick_mode() {
  const char* env = std::getenv("ICKPT_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// The standard bench knobs as typed flags; the environment variables
/// remain the defaults so existing invocations keep working.
struct BenchArgs {
  double scale = bench_scale();
  bool quick = quick_mode();

  void register_flags(FlagSet& flags) {
    flags.add_double("scale", &scale,
                     "footprint scale (default: env ICKPT_BENCH_SCALE)");
    flags.add_bool("quick", &quick,
                   "shorter runs (default: env ICKPT_BENCH_QUICK)");
  }
};

/// Parse or die: benches have no error path worth recovering.
inline void parse_or_exit(FlagSet& flags, int argc, char* const* argv) {
  auto st = flags.parse(argc, argv, 1);
  if (!st.is_ok()) {
    std::cerr << st.to_string() << "\n" << flags.help();
    std::exit(2);
  }
}

/// Unscale a measured byte quantity back to paper-equivalent MB.
inline double paper_mb(double bytes, double scale) {
  return bytes / static_cast<double>(kMB) / scale;
}

inline StudyResult must_run(StudyConfig cfg) {
  auto r = run_study(cfg);
  if (!r.is_ok()) {
    std::cerr << "study failed for " << cfg.app << ": "
              << r.status().to_string() << "\n";
    std::exit(1);
  }
  return std::move(r.value());
}

inline void finish(TextTable& table, const std::string& csv_name) {
  table.print(std::cout);
  if (table.write_csv(csv_name)) {
    std::cout << "csv: " << csv_name << "\n";
  }
}

/// Timeslices used by the figure sweeps (paper: 1 s .. 20 s).
inline std::vector<double> timeslice_sweep() {
  if (quick_mode()) return {1, 5, 20};
  return {1, 2, 5, 10, 15, 20};
}

}  // namespace ickpt::bench

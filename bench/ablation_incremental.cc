// Ablation X2: incremental vs full checkpointing volume.
//
// Quantifies the saving the paper's whole analysis is about: with a
// 1 s timeslice, incremental checkpoints write the IWS; full
// checkpoints write the whole footprint.  Also verifies restore
// correctness from the incremental chain and reports the modelled
// transfer time on the paper's 320 MB/s disk.
#include "bench/bench_util.h"

#include <cstring>

#include "apps/scripted_kernel.h"
#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "memtrack/mprotect_engine.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"
#include "storage/backend.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

struct VolumeResult {
  std::uint64_t bytes = 0;
  std::size_t checkpoints = 0;
  bool restore_ok = false;
};

VolumeResult run_checkpointed(const std::string& app, double scale,
                              double run_vs, double timeslice,
                              bool incremental) {
  memtrack::MProtectEngine engine;
  sim::VirtualClock clock;
  apps::AppConfig cfg;
  cfg.footprint_scale = scale;
  auto kernel = apps::make_app(app, cfg, engine, clock);
  if (!kernel.is_ok()) std::exit(1);
  if (!(*kernel)->init().is_ok()) std::exit(1);

  auto storage = storage::make_memory_backend();
  auto ckpt =
      checkpoint::Checkpointer::create((*kernel)->space(), storage.get())
          .value();

  sim::SamplerOptions sopts;
  sopts.timeslice = timeslice;
  std::size_t count = 0;
  sopts.on_sample = [&](const trace::Sample& s,
                        const memtrack::DirtySnapshot& snap) {
    Status st = incremental
                    ? ckpt->checkpoint_incremental(snap, s.t_end).status()
                    : ckpt->checkpoint_full(s.t_end).status();
    if (!st.is_ok()) std::exit(1);
    ++count;
  };
  sim::TimesliceSampler sampler(engine, clock, sopts);
  if (!sampler.start().is_ok()) std::exit(1);
  if (!(*kernel)->run_until(clock, clock.now() + run_vs).is_ok()) {
    std::exit(1);
  }
  // Shutdown checkpoint: capture the partial slice after the last
  // boundary so the stored chain reflects the final state exactly.
  {
    auto snap = engine.collect(/*rearm=*/true);
    if (!snap.is_ok()) std::exit(1);
    Status st = incremental
                    ? ckpt->checkpoint_incremental(*snap, clock.now()).status()
                    : ckpt->checkpoint_full(clock.now()).status();
    if (!st.is_ok()) std::exit(1);
    ++count;
  }
  sampler.stop();

  VolumeResult out;
  out.bytes = storage->total_bytes_stored();
  out.checkpoints = count;

  // Restore the newest state and compare it against live memory.
  auto state = checkpoint::restore_chain(*storage, 0);
  if (state.is_ok()) {
    out.restore_ok = true;
    for (const auto& info : (*kernel)->space().blocks()) {
      auto it = state->blocks.find(info.id);
      auto span = (*kernel)->space().block_span(info.id);
      if (it == state->blocks.end() || !span.is_ok() ||
          it->second.data.size() != span->size() ||
          std::memcmp(it->second.data.data(), span->data(),
                      span->size()) != 0) {
        out.restore_ok = false;
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  const double scale = bench_scale();
  const double run_vs = quick_mode() ? 30.0 : 60.0;
  const double disk = 320.0 * static_cast<double>(kMB);

  TextTable table("Ablation X2 - incremental vs full checkpoint volume "
                  "(timeslice 1 s, " + TextTable::num(run_vs, 0) +
                  " virtual s)");
  table.set_header({"Application", "Mode", "Ckpts", "Volume (MB, paper-eq)",
                    "Disk time/ckpt (s, paper-eq)", "Restore == live"});

  for (const char* app : {"sage-100", "bt", "ft"}) {
    for (bool incremental : {true, false}) {
      auto r = run_checkpointed(app, scale, run_vs, 1.0, incremental);
      double volume_mb = paper_mb(static_cast<double>(r.bytes), scale);
      double per_ckpt_s =
          r.checkpoints
              ? (volume_mb * static_cast<double>(kMB) / disk) /
                    static_cast<double>(r.checkpoints)
              : 0;
      table.add_row({app, incremental ? "incremental" : "full",
                     std::to_string(r.checkpoints),
                     TextTable::num(volume_mb, 0),
                     TextTable::num(per_ckpt_s, 2),
                     r.restore_ok ? "yes" : "NO"});
    }
  }
  finish(table, "ablation_incremental.csv");
  std::cout << "paper's thesis: the incremental rows must be far below "
               "the full rows, and within the 320 MB/s disk per slice\n";
  return 0;
}

// Reproduces Figure 3: average IB vs timeslice for Sage at footprints
// of 50, 100, 500 and 1000 MB — the IB grows sublinearly with the
// memory footprint (§6.4.1).
#include "bench/bench_util.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table("Figure 3 - Average IB for Sage footprints (MB/s)");
  table.set_header({"Footprint", "Timeslice (s)", "Avg IB"});

  for (const char* name :
       {"sage-1000", "sage-500", "sage-100", "sage-50"}) {
    for (double tau : timeslice_sweep()) {
      StudyConfig cfg;
      cfg.app = name;
      cfg.timeslice = tau;
      cfg.footprint_scale = scale;
      if (quick_mode()) cfg.run_vs = std::max(40.0, 8 * tau);
      auto r = must_run(cfg);
      table.add_row({name, TextTable::num(tau, 0),
                     TextTable::num(paper_mb(r.ib.avg_ib, scale))});
    }
  }
  finish(table, "fig3_ib_footprint.csv");

  std::cout << "paper checkpoints: Sage-1000 ~78.8 MB/s @1s, ~12.1 @20s;\n"
               "sublinear in footprint: 500MB ~50 @1s vs 1000MB ~80 @1s\n";
  return 0;
}

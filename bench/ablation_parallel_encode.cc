// Ablation X8: the parallel checkpoint encode pipeline.
//
// Sweeps encode threads x {compress on/off} x {sync/async} over a
// fixed dirty set and reports encode+CRC+write throughput as seen by
// the application thread — the quantity that bounds checkpoint
// intrusiveness (§6.5).  The dirty set mixes zero, RLE-able and
// random pages so compression does real work without dominating.
#include "bench/bench_util.h"

#include <chrono>
#include <cstring>
#include <filesystem>

#include "checkpoint/checkpointer.h"
#include "common/page.h"
#include "obs/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

void fill_mixed(std::span<std::byte> mem, Rng& rng) {
  const std::size_t psize = page_size();
  for (std::size_t off = 0; off + psize <= mem.size(); off += psize) {
    auto page = mem.subspan(off, psize);
    switch (rng.next_index(8)) {
      case 0:  // zero page
        std::memset(page.data(), 0, page.size());
        break;
      case 1: {  // constant-word page (RLE-able)
        std::uint64_t w = rng.next_u64();
        for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
          std::memcpy(page.data() + i, &w, 8);
        }
        break;
      }
      default:  // incompressible noise
        for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
          std::uint64_t w = rng.next_u64();
          std::memcpy(page.data() + i, &w, 8);
        }
        break;
    }
  }
}

/// Seconds the application thread spends producing `reps` full
/// checkpoints into `storage` (including the async flush barrier at
/// the end, so sync and async move the same bytes).
double time_config_into(region::AddressSpace& space,
                        storage::StorageBackend& storage, int threads,
                        bool compress, bool async, int reps) {
  checkpoint::CheckpointerOptions opts;
  opts.compress = compress;
  opts.encode_threads = threads;
  opts.async = async;
  auto ckpt =
      checkpoint::Checkpointer::create(space, &storage, opts).value();

  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto meta = ckpt->checkpoint_full(static_cast<double>(r));
    if (!meta.is_ok()) {
      std::cerr << "checkpoint failed: " << meta.status().to_string()
                << "\n";
      std::exit(1);
    }
  }
  if (!ckpt->flush().is_ok()) std::exit(1);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double time_config(region::AddressSpace& space, int threads, bool compress,
                   bool async, int reps) {
  auto storage = storage::make_null_backend();
  return time_config_into(space, *storage, threads, compress, async, reps);
}

/// Seconds to publish `count` small objects (one incremental-sized
/// record each) into `backend` — the many-small-objects cliff: every
/// FileBackend object costs open + rename + two durable syncs + a
/// directory entry, while SegmentBackend pays one append + one
/// fdatasync on an already-open fd.
double time_small_objects(storage::StorageBackend& backend, int count,
                          std::span<const std::byte> payload) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < count; ++i) {
    auto writer = backend.create("small/" + std::to_string(i));
    if (!writer.is_ok() || !(*writer)->write(payload).is_ok() ||
        !(*writer)->close().is_ok()) {
      std::cerr << "small-object write " << i << " failed\n";
      std::exit(1);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  int mb_flag = 0;
  int reps_flag = 0;
  FlagSet flags("ablation_parallel_encode");
  args.register_flags(flags);
  flags.add_int("mb", &mb_flag, "dirty-set size in MB (0 = default)");
  flags.add_int("reps", &reps_flag, "full checkpoints per config (0 = default)");
  parse_or_exit(flags, argc, argv);

  const std::size_t mb =
      mb_flag > 0 ? static_cast<std::size_t>(mb_flag) : (args.quick ? 16 : 64);
  const int reps = reps_flag > 0 ? reps_flag : (args.quick ? 1 : 3);
  const std::vector<int> thread_sweep =
      args.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  memtrack::ExplicitEngine engine;
  region::AddressSpace space(engine, "bench");
  auto block = space.map(mb * kMB, region::AreaKind::kHeap, "dirty-set");
  if (!block.is_ok()) return 1;
  Rng rng(2026);
  fill_mixed(block->mem, rng);
  const double set_mb = static_cast<double>(block->mem.size()) /
                        static_cast<double>(kMB);

  const double hw = static_cast<double>(ThreadPool::hardware_threads());
  TextTable table("Ablation X8 - parallel encode pipeline (" +
                  TextTable::num(set_mb, 0) + " MB dirty set, full "
                  "checkpoints x" + TextTable::num(reps, 0) + ", " +
                  TextTable::num(hw, 0) + " hardware threads)");
  table.set_header({"Threads", "Compress", "Mode", "Seconds", "MB/s",
                    "Speedup vs 1T"});

  BenchJson bench_json("encode", args);
  const std::uint64_t arm_bytes =
      block->mem.size() * static_cast<std::uint64_t>(reps);
  for (bool compress : {true, false}) {
    for (bool async : {false, true}) {
      double base_rate = 0;
      for (int threads : thread_sweep) {
        const std::string arm_name =
            "t" + std::to_string(threads) +
            (compress ? "_compress" : "_raw") + (async ? "_async" : "_sync");
        double secs = 0;
        bench_json.run_arm(arm_name, arm_bytes, [&] {
          secs = time_config(space, threads, compress, async, reps);
        });
        const double rate = set_mb * reps / secs;
        if (threads == 1) base_rate = rate;
        table.add_row({TextTable::num(threads, 0),
                       compress ? "on" : "off", async ? "async" : "sync",
                       TextTable::num(secs, 3), TextTable::num(rate, 0),
                       TextTable::num(base_rate > 0 ? rate / base_rate : 1,
                                      2)});
      }
    }
  }
  // File-sink arms: the same encode against a real filesystem, once
  // buffered and once through the O_DIRECT staging writer.  On
  // filesystems that refuse O_DIRECT (tmpfs CI) the direct arm
  // transparently degrades to buffered — the fallback column says
  // which path actually ran.
  auto& fallbacks = obs::registry().counter("storage.direct_io_fallback");
  const int file_threads = thread_sweep.back();
  for (bool direct : {false, true}) {
    const std::string dir = "ablation_parallel_encode_sink";
    std::filesystem::remove_all(dir);
    storage::FileBackendOptions fopts;
    fopts.direct_io = direct;
    auto file_backend = storage::make_file_backend(dir, fopts);
    if (!file_backend.is_ok()) {
      std::cerr << "file backend: " << file_backend.status().to_string()
                << "\n";
      return 1;
    }
    const std::uint64_t fb0 = fallbacks.value();
    double secs = 0;
    const std::string arm_name =
        direct ? "file_direct_write" : "file_buffered_write";
    bench_json.run_arm(arm_name, arm_bytes, [&] {
      secs = time_config_into(space, **file_backend, file_threads,
                              /*compress=*/false, /*async=*/false, reps);
    });
    const bool fell_back = fallbacks.value() > fb0;
    table.add_row({TextTable::num(file_threads, 0), "off",
                   direct ? (fell_back ? "direct->buffered" : "direct")
                          : "file buffered",
                   TextTable::num(secs, 3),
                   TextTable::num(set_mb * reps / secs, 0),
                   TextTable::num(1.0, 2)});
    std::filesystem::remove_all(dir);
  }

  // Segment-sink arm: the same encode into the log-structured store.
  {
    const std::string dir = "ablation_parallel_encode_segsink";
    std::filesystem::remove_all(dir);
    auto seg_backend = storage::make_segment_backend(dir);
    if (!seg_backend.is_ok()) {
      std::cerr << "segment backend: " << seg_backend.status().to_string()
                << "\n";
      return 1;
    }
    double secs = 0;
    bench_json.run_arm("segment_write", arm_bytes, [&] {
      secs = time_config_into(space, **seg_backend, file_threads,
                              /*compress=*/false, /*async=*/false, reps);
    });
    table.add_row({TextTable::num(file_threads, 0), "off", "segment",
                   TextTable::num(secs, 3),
                   TextTable::num(set_mb * reps / secs, 0),
                   TextTable::num(1.0, 2)});
    seg_backend->reset();
    std::filesystem::remove_all(dir);
  }

  // Many-small-objects arms: publish `small_count` tiny objects with
  // default (durable) options through each backend.  This is the
  // workload shape of frequent small incrementals, where FileBackend's
  // per-object metadata cost dominates.
  {
    const int small_count = args.quick ? 2000 : 12000;
    const std::size_t small_size = 2 * 1024;
    std::vector<std::byte> payload(small_size);
    Rng prng(7);
    for (auto& b : payload) b = static_cast<std::byte>(prng.next_u64());
    const std::uint64_t small_bytes =
        static_cast<std::uint64_t>(small_count) * small_size;
    for (bool segment : {false, true}) {
      const std::string dir = "ablation_parallel_encode_smallobj";
      std::filesystem::remove_all(dir);
      Result<std::unique_ptr<storage::StorageBackend>> backend =
          segment ? storage::make_segment_backend(dir)
                  : storage::make_file_backend(dir);
      if (!backend.is_ok()) {
        std::cerr << "smallobj backend: " << backend.status().to_string()
                  << "\n";
        return 1;
      }
      double secs = 0;
      bench_json.run_arm(segment ? "smallobj_segment" : "smallobj_file",
                         small_bytes, [&] {
                           secs = time_small_objects(**backend, small_count,
                                                     payload);
                         });
      table.add_row({TextTable::num(1, 0), "off",
                     segment ? "smallobj segment" : "smallobj file",
                     TextTable::num(secs, 3),
                     TextTable::num(static_cast<double>(small_bytes) /
                                        static_cast<double>(kMB) / secs,
                                    1),
                     TextTable::num(1.0, 2)});
      backend->reset();
      std::filesystem::remove_all(dir);
    }
  }

  finish(table, "ablation_parallel_encode.csv");
  bench_json.write(args);
  std::cout << "sharded encode + CRC combine lifts the single-core "
               "ceiling on checkpoint intrusiveness; async overlaps "
               "the device\n";
  if (hw < 2) {
    std::cout << "note: only " << hw << " hardware thread available -- "
                 "speedup columns reflect scheduling overhead, not "
                 "scaling; run on a multi-core host to observe it\n";
  }
  return 0;
}

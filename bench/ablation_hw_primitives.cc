// Ablation X10: hardware-primitive fast paths.
//
// Measures the page-granular primitives that sit on every checkpoint
// byte: CRC-32 (slice-by-8 vs the dispatched hardware kernel) and the
// zero-page filter.  Buffers are ~64 KiB — the shard/segment
// granularity the encode and restore pipelines actually hash at — so
// the reported MB/s is what those pipelines see, not a cold-cache or
// whole-file number.
//
// The bench prints the kernels detected on this host and asserts the
// dispatch contract from docs/PERF.md: every available kernel produces
// bit-identical CRCs (including crc32_combine stitching across kernel
// boundaries), the hardware kernel is at least 3x slice-by-8 when
// present, and on soft-only hosts auto selection lands on slice-by-8.
#include "bench/bench_util.h"

#include <chrono>
#include <cstring>

#include "checkpoint/compress.h"
#include "common/crc32.h"
#include "common/page.h"
#include "common/rng.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

constexpr std::size_t kBufSize = 64 * 1024;

/// Hash `total` bytes through `buf` in one-buffer updates and return
/// MB/s; the CRC is accumulated into a sink so the loop can't be
/// dead-code eliminated.
double crc_throughput(std::span<const std::byte> buf, std::uint64_t total,
                      std::uint32_t* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  while (done < total) {
    *sink ^= crc32(buf);
    done += buf.size();
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(done) / kMB / s;
}

double zero_scan_throughput(std::span<const std::byte> pages,
                            std::uint64_t total, std::uint64_t* hits) {
  const std::size_t psize = page_size();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  while (done < total) {
    for (std::size_t off = 0; off + psize <= pages.size(); off += psize) {
      *hits += checkpoint::is_zero_page(pages.subspan(off, psize)) ? 1 : 0;
    }
    done += pages.size();
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(done) / kMB / s;
}

void die(const std::string& msg) {
  std::cerr << "X10 FAILED: " << msg << "\n";
  std::exit(1);
}

/// The acceptance identity check: every available kernel agrees with
/// slice-by-8 over awkward lengths/alignments, and combine() stitches
/// pieces hashed by different kernels.
void check_kernel_identity(std::span<const std::byte> data) {
  const CrcKernel active = crc32_active_kernel();
  std::vector<std::uint32_t> soft;
  crc32_set_kernel(CrcKernel::kSlice8);
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 4096u, 65521u}) {
    for (std::size_t align : {0u, 1u, 7u, 13u}) {
      soft.push_back(crc32({data.data() + align, len}));
    }
  }
  const std::uint32_t head_soft = crc32({data.data(), 1000});
  const std::uint32_t whole_soft = crc32({data.data(), 65536});

  for (CrcKernel k : {CrcKernel::kPclmul, CrcKernel::kArmCrc}) {
    if (!crc32_kernel_available(k)) continue;
    crc32_set_kernel(k);
    std::size_t i = 0;
    for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 4096u, 65521u}) {
      for (std::size_t align : {0u, 1u, 7u, 13u}) {
        if (crc32({data.data() + align, len}) != soft[i++]) {
          die(std::string(crc32_kernel_name(k)) + " disagrees with slice8");
        }
      }
    }
    // Stitch a soft head onto a hardware tail.
    const std::uint32_t tail_hw = crc32({data.data() + 1000, 65536 - 1000});
    if (crc32_combine(head_soft, tail_hw, 65536 - 1000) != whole_soft) {
      die(std::string(crc32_kernel_name(k)) +
          " combine stitching across kernels broke");
    }
  }
  crc32_set_kernel(active);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  FlagSet flags("ablation_hw_primitives");
  args.register_flags(flags);
  parse_or_exit(flags, argc, argv);

  std::cout << "crc kernels: slice8=yes pclmul="
            << (crc32_kernel_available(CrcKernel::kPclmul) ? "yes" : "no")
            << " armv8-crc="
            << (crc32_kernel_available(CrcKernel::kArmCrc) ? "yes" : "no")
            << " active=" << crc32_kernel_name(crc32_active_kernel()) << "\n";

  Rng rng(2026);
  std::vector<std::byte> data(kBufSize + 64);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  check_kernel_identity(data);

  const bool have_hw = crc32_kernel_available(CrcKernel::kPclmul) ||
                       crc32_kernel_available(CrcKernel::kArmCrc);
  if (!have_hw && crc32_select_default_kernel() != CrcKernel::kSlice8) {
    die("soft-only host must auto-select slice8");
  }

  // Enough repetitions for a stable rate; ~64 KiB buffers stay in L2,
  // which is the hot-loop shape of shard hashing.
  const std::uint64_t crc_total =
      (args.quick ? 64ull : 4096ull) * kMB;
  std::span<const std::byte> buf{data.data(), kBufSize};

  TextTable table("Ablation X10 - hardware primitives (64 KiB buffers)");
  table.set_header({"Primitive", "Kernel", "MB/s", "Speedup vs soft"});
  BenchJson bench_json("crc", args);

  std::uint32_t sink = 0;
  double soft_rate = 0;
  crc32_set_kernel(CrcKernel::kSlice8);
  bench_json.run_arm("crc_soft_64k", crc_total, [&] {
    soft_rate = crc_throughput(buf, crc_total, &sink);
  });
  table.add_row({"crc32", "slice8", TextTable::num(soft_rate, 0),
                 TextTable::num(1.0, 2)});

  for (CrcKernel k : {CrcKernel::kPclmul, CrcKernel::kArmCrc}) {
    if (!crc32_kernel_available(k)) continue;
    crc32_set_kernel(k);
    double hw_rate = 0;
    bench_json.run_arm(std::string("crc_hw_") + crc32_kernel_name(k) + "_64k",
                       crc_total,
                       [&] { hw_rate = crc_throughput(buf, crc_total, &sink); });
    const double speedup = hw_rate / soft_rate;
    table.add_row({"crc32", crc32_kernel_name(k), TextTable::num(hw_rate, 0),
                   TextTable::num(speedup, 2)});
    if (speedup < 3.0) {
      die(std::string(crc32_kernel_name(k)) + " only " +
          TextTable::num(speedup, 2) + "x slice8 (want >= 3x)");
    }
  }
  crc32_select_default_kernel();

  // Zero-page filter: the all-zero scan is the worst case (every byte
  // inspected); the dirty scan must be far faster via the per-block
  // early-out.
  const std::uint64_t zero_total = (args.quick ? 64ull : 2048ull) * kMB;
  std::vector<std::byte> zeros(kBufSize, std::byte{0});
  std::vector<std::byte> dirty(kBufSize, std::byte{0});
  for (std::size_t off = 0; off < dirty.size(); off += page_size()) {
    dirty[off] = std::byte{1};
  }
  std::uint64_t hits = 0;
  double zero_rate = 0;
  double dirty_rate = 0;
  bench_json.run_arm("zero_page_scan_allzero", zero_total, [&] {
    zero_rate = zero_scan_throughput(zeros, zero_total, &hits);
  });
  bench_json.run_arm("zero_page_scan_dirty", zero_total, [&] {
    dirty_rate = zero_scan_throughput(dirty, zero_total, &hits);
  });
  table.add_row({"is_zero_page", "all-zero", TextTable::num(zero_rate, 0),
                 TextTable::num(1.0, 2)});
  table.add_row({"is_zero_page", "dirty (early-out)",
                 TextTable::num(dirty_rate, 0),
                 TextTable::num(dirty_rate / zero_rate, 2)});
  // Floors: full scans must at least keep pace with a fast disk, and
  // the early-out must make dirty pages markedly cheaper.  Both are
  // far below what any 2020s core does; they catch regressions to
  // byte-at-a-time scanning, not host variance.
  if (zero_rate < 1024) die("is_zero_page below 1 GB/s on zero pages");
  if (dirty_rate < 2 * zero_rate) {
    die("is_zero_page early-out missing (dirty scan not faster)");
  }
  if (hits == 0) die("zero scan found no zero pages (broken filter)");

  finish(table, "ablation_hw_primitives.csv");
  bench_json.write(args);
  std::cout << "crc arms hash 64 KiB resident buffers (shard-hash shape); "
               "dispatch: ICKPT_CRC_IMPL=soft|hw|auto, see docs/PERF.md\n";
  return 0;
}

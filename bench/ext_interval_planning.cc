// Extension: from measured IWS to checkpoint schedules.
//
// The paper's opening motivation is machine-level failure rates
// ("BlueGene/L ... is expected to experience failures every few
// hours", §1) and its measurement is the cost side (IWS -> bytes per
// checkpoint).  This bench closes the loop with the Young/Daly optimal
// -interval model: for each application, the measured 1 s IWS and the
// paper's 320 MB/s disk give the incremental checkpoint cost; a
// few-hour MTBF then yields the overhead-minimizing interval and the
// machine efficiency under failures — the number that makes
// "feasible" quantitative end to end.
#include "bench/bench_util.h"

#include "analysis/interval_model.h"
#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  const double disk = 320.0 * static_cast<double>(kMB);
  const double mtbf = 4 * 3600.0;  // "failures every few hours"

  TextTable table("Extension - Daly-optimal checkpoint schedules "
                  "(320 MB/s disk, 4 h MTBF)");
  table.set_header({"Application", "Ckpt cost (s)", "Optimal interval (s)",
                    "Waste %", "Efficiency %"});

  for (const auto& name : apps::catalog_names()) {
    // The per-checkpoint volume is the IWS of the checkpoint interval.
    // IWS(tau) saturates near the per-iteration working set for large
    // tau (Figure 2's decay), so the measured IWS at the longest
    // studied timeslice (20 s) is the right — and conservative —
    // constant cost for a Young/Daly model whose optimal intervals
    // land in the minutes range.
    StudyConfig cfg;
    cfg.app = name;
    cfg.timeslice = 20.0;
    cfg.footprint_scale = scale;
    if (quick_mode()) cfg.run_vs = 160.0;
    auto r = must_run(cfg);

    double ckpt_bytes = r.ib.avg_iws / scale;  // paper-equivalent
    double footprint = r.footprint.max_bytes / scale;
    auto plan =
        analysis::plan_interval(ckpt_bytes, footprint, disk, mtbf);
    table.add_row({name, TextTable::num(plan.checkpoint_cost_s, 2),
                   TextTable::num(plan.interval_s, 0),
                   TextTable::num(plan.waste * 100, 2),
                   TextTable::num(plan.efficiency * 100, 1)});
  }
  finish(table, "ext_interval_planning.csv");
  std::cout << "every application sustains > 98% machine efficiency "
               "under few-hour failures with incremental checkpoints on "
               "2004 disks — the feasibility claim in time, not "
               "bandwidth, terms\n";
  return 0;
}

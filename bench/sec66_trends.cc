// Reproduces Section 6.6 (Technological Trends): project the measured
// bandwidth requirement and the device bandwidths forward from 2004
// and confirm the paper's conclusion that "future improvements in
// networking and storage will make incremental checkpointing even
// more effective".
#include "bench/bench_util.h"

#include "analysis/trends.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();

  // Anchor the model at the measured Sage-1000MB requirement.
  StudyConfig cfg;
  cfg.app = "sage-1000";
  cfg.timeslice = 1.0;
  cfg.footprint_scale = scale;
  if (quick_mode()) cfg.run_vs = 150.0;
  auto r = must_run(cfg);

  analysis::TrendModel model;
  model.app_ib0 = r.ib.avg_ib / scale;  // paper-equivalent bytes/s
  model.network0 = 900.0 * static_cast<double>(kMB);
  model.storage0 = 320.0 * static_cast<double>(kMB);
  // Paper anchors: app performance doubles every 2-3 years (~30%/yr);
  // networking jumps 900 MB/s (2004) -> 10 GB/s Infiniband (2005).
  model.app_ib_growth = 0.30;
  model.network_growth = 0.80;
  model.storage_growth = 0.40;

  TextTable table("Section 6.6 - Technology trend projection "
                  "(year 0 = 2004, Sage-1000MB)");
  table.set_header({"Year", "App IB (MB/s)", "Network (MB/s)",
                    "Storage (MB/s)", "% of net", "% of disk", "Feasible"});
  for (const auto& p : analysis::project(model, 8)) {
    table.add_row({std::to_string(2004 + p.year),
                   TextTable::num(p.app_ib / static_cast<double>(kMB)),
                   TextTable::num(p.network / static_cast<double>(kMB), 0),
                   TextTable::num(p.storage / static_cast<double>(kMB), 0),
                   TextTable::num(p.frac_of_network * 100),
                   TextTable::num(p.frac_of_storage * 100),
                   p.feasible ? "yes" : "NO"});
  }
  finish(table, "sec66_trends.csv");

  int bad_year = analysis::infeasibility_year(model, 15);
  std::cout << (bad_year < 0
                    ? "headroom widens every year (paper's conclusion "
                      "holds)\n"
                    : "infeasible starting year " +
                          std::to_string(2004 + bad_year) + "\n");
  return 0;
}

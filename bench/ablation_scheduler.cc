// Ablation X5: burst-aware checkpoint scheduling vs fixed intervals.
//
// The paper (§6.2) argues checkpoints belong in the quiet gaps between
// processing bursts.  BurstAwareScheduler finds those gaps online from
// the IWS stream.  This bench compares, on Sage, a fixed-interval
// policy against the scheduler at a matched checkpoint *rate*: the
// metric is the average IWS captured per checkpoint (payload volume)
// and where the checkpoints landed (burst vs gap).
#include "bench/bench_util.h"

#include "analysis/bursts.h"
#include "apps/catalog.h"
#include "apps/scripted_kernel.h"
#include "checkpoint/scheduler.h"
#include "memtrack/mprotect_engine.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

struct PolicyResult {
  std::size_t checkpoints = 0;
  double total_iws_mb = 0;   ///< paper-equivalent, sum over checkpoints
  std::size_t in_gap = 0;    ///< checkpoints taken in quiet slices
};

/// Run `app` sampling at 1 s; the policy decides at which boundaries a
/// checkpoint would be cut.  The cost of a checkpoint at boundary t is
/// the IWS accumulated since the previous checkpoint (we emulate that
/// by summing the per-slice IWS between cuts — an upper bound that is
/// exact when pages are not re-dirtied across the cut).
PolicyResult run_policy(const std::string& app, double scale, double run_vs,
                        bool burst_aware, double fixed_interval,
                        double gap_threshold_mb) {
  memtrack::MProtectEngine engine;
  sim::VirtualClock clock;
  apps::AppConfig cfg;
  cfg.footprint_scale = scale;
  auto kernel = apps::make_app(app, cfg, engine, clock);
  if (!kernel.is_ok()) std::exit(1);
  if (!(*kernel)->init().is_ok()) std::exit(1);

  checkpoint::BurstAwareScheduler::Options sopts;
  sopts.min_interval = fixed_interval * 0.5;
  sopts.max_interval = fixed_interval * 1.5;
  checkpoint::BurstAwareScheduler scheduler(sopts);

  PolicyResult out;
  double acc_mb = 0;
  double last_cut = 0;
  sim::SamplerOptions opts;
  opts.timeslice = 1.0;
  opts.on_sample = [&](const trace::Sample& s,
                       const memtrack::DirtySnapshot&) {
    double slice_mb = paper_mb(static_cast<double>(s.iws_bytes), scale);
    acc_mb += slice_mb;
    bool cut = burst_aware
                   ? scheduler.observe(s)
                   : (s.t_end - last_cut >= fixed_interval - 1e-9);
    if (cut) {
      ++out.checkpoints;
      out.total_iws_mb += acc_mb;
      if (slice_mb < gap_threshold_mb) ++out.in_gap;
      acc_mb = 0;
      last_cut = s.t_end;
    }
  };
  sim::TimesliceSampler sampler(engine, clock, opts);
  if (!sampler.start().is_ok()) std::exit(1);
  if (!(*kernel)->run_until(clock, clock.now() + run_vs).is_ok()) {
    std::exit(1);
  }
  sampler.stop();
  return out;
}

}  // namespace

int main() {
  const double scale = bench_scale();
  TextTable table("Ablation X5 - checkpoint policy (capture volume per "
                  "checkpoint)");
  table.set_header({"Application", "Policy", "Ckpts", "Avg capture (MB)",
                    "Taken in quiet gap %"});

  struct Case {
    const char* app;
    double interval;   ///< fixed interval, deliberately incommensurate
    double gap_mb;     ///< "quiet" threshold for reporting
  };
  // Fixed intervals ~0.7x the iteration period: the cuts drift through
  // the iteration phases, landing mid-burst much of the time — the
  // realistic situation when the period is unknown a priori.
  for (const Case& c : {Case{"sage-50", 14.0, 5.0},
                        Case{"sage-100", 27.0, 8.0}}) {
    const double run_vs = quick_mode() ? 6 * c.interval : 12 * c.interval;
    for (bool burst_aware : {false, true}) {
      auto r = run_policy(c.app, scale, run_vs, burst_aware, c.interval,
                          c.gap_mb);
      double avg = r.checkpoints
                       ? r.total_iws_mb / static_cast<double>(r.checkpoints)
                       : 0;
      double gap_pct = r.checkpoints ? 100.0 * static_cast<double>(r.in_gap) /
                                           static_cast<double>(r.checkpoints)
                                     : 0;
      table.add_row({c.app, burst_aware ? "burst-aware" : "fixed",
                     std::to_string(r.checkpoints), TextTable::num(avg, 0),
                     TextTable::num(gap_pct, 0)});
    }
  }
  finish(table, "ablation_scheduler.csv");
  std::cout << "the burst-aware policy lands its cuts in the quiet "
               "communication gaps (paper §6.2's placement advice), at a "
               "comparable checkpoint rate\n";
  return 0;
}

// Ablation X11: the network checkpoint store under concurrent load.
//
// Starts an in-process ickptd core (net::Server over a memory backend,
// loopback TCP) and drives it with N client threads, each streaming M
// chain-style objects through its own RemoteBackend connection — the
// exact PUT_BEGIN/PUT_DATA/PUT_END and ranged-GET paths the
// Checkpointer and restore pipeline use.  Arms sweep the stream count
// (1, 8, 64) for puts and gets separately; every GET is verified
// byte-for-byte against the generator, and the run fails hard if the
// server counted a single protocol error or dropped a byte.
#include "bench/bench_util.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/rng.h"
#include "net/remote_backend.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

std::vector<std::byte> object_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    const std::uint64_t w = rng.next_u64();
    std::memcpy(out.data() + i, &w, 8);
  }
  return out;
}

std::string object_key(std::size_t thread, std::size_t index) {
  return "rank" + std::to_string(thread) + "/ckpt-" + std::to_string(index);
}

struct Workload {
  std::size_t streams = 1;
  std::size_t objects_per_stream = 4;   ///< M chain elements per client
  std::size_t object_size = 1u << 20;

  std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(streams) * objects_per_stream *
           object_size;
  }
};

/// Run `fn(thread_index)` on `streams` threads and propagate failure.
template <typename F>
bool fan_out(std::size_t streams, F&& fn) {
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  threads.reserve(streams);
  for (std::size_t t = 0; t < streams; ++t) {
    threads.emplace_back([&, t] {
      if (!fn(t)) ok.store(false, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  return ok.load();
}

bool put_all(storage::StorageBackend& store, const Workload& w,
             std::size_t thread) {
  for (std::size_t i = 0; i < w.objects_per_stream; ++i) {
    const auto bytes =
        object_bytes(w.object_size, thread * 1000 + i);
    auto writer = store.create(object_key(thread, i));
    if (!writer.is_ok()) return false;
    // Chain-style streaming: several write() calls per object, the
    // shape the encode pipeline produces.
    std::span<const std::byte> rest(bytes);
    while (!rest.empty()) {
      const std::size_t n = std::min<std::size_t>(rest.size(), 192 * 1024);
      if (!(*writer)->write(rest.first(n)).is_ok()) return false;
      rest = rest.subspan(n);
    }
    if (!(*writer)->close().is_ok()) return false;
  }
  return true;
}

bool get_all(storage::StorageBackend& store, const Workload& w,
             std::size_t thread) {
  std::vector<std::byte> got(w.object_size);
  for (std::size_t i = 0; i < w.objects_per_stream; ++i) {
    auto reader = store.open(object_key(thread, i));
    if (!reader.is_ok()) return false;
    if ((*reader)->size() != w.object_size) return false;
    std::size_t off = 0;
    while (off < got.size()) {
      auto n = (*reader)->read({got.data() + off, got.size() - off});
      if (!n.is_ok() || *n == 0) break;
      off += *n;
    }
    const auto expect = object_bytes(w.object_size, thread * 1000 + i);
    if (off != expect.size() ||
        std::memcmp(got.data(), expect.data(), off) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  FlagSet flags("ablation_net");
  args.register_flags(flags);
  parse_or_exit(flags, argc, argv);

  auto backend = storage::make_memory_backend();
  auto server = net::Server::create(*backend);
  if (!server.is_ok()) {
    std::cerr << "server: " << server.status().to_string() << "\n";
    return 1;
  }
  std::thread serve_thread([&] { (void)(*server)->serve(); });

  auto& protocol_errors = obs::registry().counter("net.protocol_errors");
  const std::uint64_t errors_before = protocol_errors.value();

  BenchJson json("net", args);
  TextTable table("Ablation X11 - network store under concurrent load");
  table.set_header({"arm", "streams", "MB", "wall_s", "MB/s"});

  bool all_ok = true;
  for (std::size_t streams : {std::size_t{1}, std::size_t{8},
                              std::size_t{64}}) {
    Workload w;
    w.streams = streams;
    w.objects_per_stream = args.quick ? 2 : 4;
    w.object_size = args.quick ? 256u * 1024 : 1u << 20;

    storage::RemoteBackendOptions options;
    options.host = "127.0.0.1";
    options.port = (*server)->port();
    options.pool_size = streams;  // one pooled socket per stream
    options.io_timeout_s = 120.0;
    auto remote = storage::make_remote_backend(options);
    if (!remote.is_ok()) {
      std::cerr << "connect: " << remote.status().to_string() << "\n";
      return 1;
    }

    for (const char* dir : {"put", "get"}) {
      const std::string arm =
          std::string(dir) + "_s" + std::to_string(streams);
      bool ok = true;
      const auto t0 = std::chrono::steady_clock::now();
      json.run_arm(arm, w.total_bytes(), [&] {
        ok = fan_out(streams, [&](std::size_t t) {
          return std::string(dir) == "put" ? put_all(**remote, w, t)
                                           : get_all(**remote, w, t);
        });
      });
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      const double mb =
          static_cast<double>(w.total_bytes()) / (1024.0 * 1024.0);
      table.add_row({arm, std::to_string(streams), TextTable::num(mb, 1),
                     TextTable::num(wall, 3), TextTable::num(mb / wall, 1)});
      if (!ok) {
        std::cerr << arm << ": FAILED (error or byte mismatch)\n";
        all_ok = false;
      }
    }

    // Fresh store per stream count so get arms read what their own
    // put arm wrote and memory stays bounded.
    auto keys = (*remote)->list();
    if (keys.is_ok()) {
      for (const auto& key : *keys) (void)(*remote)->remove(key);
    }
  }

  (*server)->stop();
  serve_thread.join();

  // Segment-served arms: the same wire traffic against a daemon whose
  // store is the on-disk log-structured backend — the deployment shape
  // of `ickptd --backend segment`.
  {
    const std::string dir = "ablation_net_segstore";
    std::filesystem::remove_all(dir);
    auto seg_backend = storage::make_segment_backend(dir);
    if (!seg_backend.is_ok()) {
      std::cerr << "segment backend: " << seg_backend.status().to_string()
                << "\n";
      return 1;
    }
    auto seg_server = net::Server::create(**seg_backend);
    if (!seg_server.is_ok()) {
      std::cerr << "segment server: " << seg_server.status().to_string()
                << "\n";
      return 1;
    }
    std::thread seg_serve([&] { (void)(*seg_server)->serve(); });

    Workload w;
    w.streams = 8;
    w.objects_per_stream = args.quick ? 2 : 4;
    w.object_size = args.quick ? 256u * 1024 : 1u << 20;

    storage::RemoteBackendOptions options;
    options.host = "127.0.0.1";
    options.port = (*seg_server)->port();
    options.pool_size = w.streams;
    options.io_timeout_s = 120.0;
    auto remote = storage::make_remote_backend(options);
    if (!remote.is_ok()) {
      std::cerr << "connect: " << remote.status().to_string() << "\n";
      return 1;
    }

    for (const char* dir_name : {"put", "get"}) {
      const std::string arm = std::string("segment_") + dir_name + "_s" +
                              std::to_string(w.streams);
      bool ok = true;
      const auto t0 = std::chrono::steady_clock::now();
      json.run_arm(arm, w.total_bytes(), [&] {
        ok = fan_out(w.streams, [&](std::size_t t) {
          return std::string(dir_name) == "put" ? put_all(**remote, w, t)
                                                : get_all(**remote, w, t);
        });
      });
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      const double mb =
          static_cast<double>(w.total_bytes()) / (1024.0 * 1024.0);
      table.add_row({arm, std::to_string(w.streams), TextTable::num(mb, 1),
                     TextTable::num(wall, 3), TextTable::num(mb / wall, 1)});
      if (!ok) {
        std::cerr << arm << ": FAILED (error or byte mismatch)\n";
        all_ok = false;
      }
    }

    remote->reset();
    (*seg_server)->stop();
    seg_serve.join();
    seg_backend->reset();
    std::filesystem::remove_all(dir);
  }

  const std::uint64_t errors = protocol_errors.value() - errors_before;
  std::cout << "concurrent streams peak: "
            << obs::registry().gauge("net.conns_open").max()
            << ", protocol errors: " << errors << "\n";
  if (errors != 0) {
    std::cerr << "ablation_net: protocol errors under load\n";
    all_ok = false;
  }

  finish(table, "ablation_net.csv");
  json.write(args);
  return all_ok ? 0 : 1;
}

// Reproduces Figure 4: ratio of IWS size to memory image size per
// timeslice for the Sage footprints — the ratio *decreases* as the
// footprint grows, which is why IB is sublinear in footprint (§6.4.1).
#include <map>

#include "bench/bench_util.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table("Figure 4 - IWS / memory image ratio (%)");
  table.set_header({"Footprint", "Timeslice (s)", "IWS/footprint %"});

  std::map<double, std::vector<double>> by_tau;  // for the trend check
  for (const char* name :
       {"sage-1000", "sage-500", "sage-100", "sage-50"}) {
    for (double tau : timeslice_sweep()) {
      StudyConfig cfg;
      cfg.app = name;
      cfg.timeslice = tau;
      cfg.footprint_scale = scale;
      if (quick_mode()) cfg.run_vs = std::max(40.0, 8 * tau);
      auto r = must_run(cfg);
      table.add_row({name, TextTable::num(tau, 0),
                     TextTable::num(r.ib.avg_ratio * 100)});
      by_tau[tau].push_back(r.ib.avg_ratio);
    }
  }
  finish(table, "fig4_iws_ratio.csv");

  // Trend: at each timeslice, the largest footprint should have the
  // smallest IWS/footprint ratio (rows above were emitted from large
  // to small footprint).
  int confirming = 0, total = 0;
  for (const auto& [tau, ratios] : by_tau) {
    ++total;
    if (ratios.front() <= ratios.back()) ++confirming;
  }
  std::cout << "ratio decreases with footprint at " << confirming << "/"
            << total << " timeslices (paper: all)\n";
  return 0;
}

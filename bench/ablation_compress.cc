// Ablation X6: per-page checkpoint compression (zero elision + word
// RLE, format v2) — what does it save on the calibrated workloads?
//
// Sage allocates fresh zero pages continuously (AMR refinement units),
// so its full checkpoints carry many elidable pages; the NAS codes'
// active data is incompressible noise, bounding the benefit — the
// honest picture of what cheap filters buy.
#include "bench/bench_util.h"

#include "apps/scripted_kernel.h"
#include "checkpoint/checkpointer.h"
#include "memtrack/mprotect_engine.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"
#include "storage/backend.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

struct VolumeResult {
  std::uint64_t bytes = 0;
  std::uint64_t zero_pages = 0;
  std::uint64_t rle_pages = 0;
  std::uint64_t payload_pages = 0;
};

VolumeResult run_app(const std::string& app, double scale, double run_vs,
                     bool compress) {
  memtrack::MProtectEngine engine;
  sim::VirtualClock clock;
  apps::AppConfig cfg;
  cfg.footprint_scale = scale;
  auto kernel = apps::make_app(app, cfg, engine, clock);
  if (!kernel.is_ok()) std::exit(1);
  if (!(*kernel)->init().is_ok()) std::exit(1);

  auto storage = storage::make_null_backend();
  checkpoint::CheckpointerOptions copts;
  copts.compress = compress;
  auto ckpt = checkpoint::Checkpointer::create((*kernel)->space(),
                                             storage.get(), copts)
                .value();

  VolumeResult out;
  sim::SamplerOptions sopts;
  sopts.timeslice = 1.0;
  sopts.on_sample = [&](const trace::Sample& s,
                        const memtrack::DirtySnapshot& snap) {
    auto meta = ckpt->checkpoint_incremental(snap, s.t_end);
    if (!meta.is_ok()) std::exit(1);
    out.zero_pages += meta->zero_pages;
    out.rle_pages += meta->rle_pages;
    out.payload_pages += meta->payload_pages;
  };
  sim::TimesliceSampler sampler(engine, clock, sopts);
  if (!sampler.start().is_ok()) std::exit(1);
  if (!(*kernel)->run_until(clock, clock.now() + run_vs).is_ok()) {
    std::exit(1);
  }
  sampler.stop();
  out.bytes = storage->total_bytes_stored();
  return out;
}

}  // namespace

int main() {
  const double scale = bench_scale();
  const double run_vs = quick_mode() ? 25.0 : 50.0;

  TextTable table("Ablation X6 - checkpoint compression (incremental "
                  "chain, timeslice 1 s, " + TextTable::num(run_vs, 0) +
                  " virtual s)");
  table.set_header({"Application", "Plain (MB)", "Compressed (MB)",
                    "Saving %", "Zero pages %", "RLE pages %"});

  for (const char* app : {"sage-100", "sweep3d", "bt", "jacobi3d"}) {
    auto plain = run_app(app, scale, run_vs, /*compress=*/false);
    auto compressed = run_app(app, scale, run_vs, /*compress=*/true);
    double plain_mb = paper_mb(static_cast<double>(plain.bytes), scale);
    double comp_mb =
        paper_mb(static_cast<double>(compressed.bytes), scale);
    double saving = plain_mb > 0 ? (1 - comp_mb / plain_mb) * 100 : 0;
    auto pct = [&](std::uint64_t n) {
      return compressed.payload_pages
                 ? TextTable::num(100.0 * static_cast<double>(n) /
                                      static_cast<double>(
                                          compressed.payload_pages),
                                  1)
                 : std::string("-");
    };
    table.add_row({app, TextTable::num(plain_mb, 0),
                   TextTable::num(comp_mb, 0), TextTable::num(saving, 1),
                   pct(compressed.zero_pages), pct(compressed.rle_pages)});
  }
  finish(table, "ablation_compress.csv");
  std::cout << "zero elision pays on dynamically-allocating codes "
               "(fresh AMR blocks); solver noise itself is "
               "incompressible by design\n";
  return 0;
}

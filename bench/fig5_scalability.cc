// Reproduces Figure 5: average per-process IB for Sage-1000MB on 8,
// 16, 32 and 64 processors (weak scaling).  The paper's key claim:
// the processor count has no significant influence, and per-process
// IB is *slightly lower* at larger counts (§6.4.2).
//
// Ranks are threads with per-rank footprints, so this bench uses a
// smaller footprint scale (1/64 by default) to fit 64 ranks in RAM.
#include <map>

#include "bench/bench_util.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  double scale = bench_scale();
  if (scale > 1.0 / 64.0) scale = 1.0 / 64.0;  // 64 ranks must fit

  TextTable table("Figure 5 - Avg per-process IB for Sage-1000MB (MB/s)");
  table.set_header({"Procs", "Timeslice (s)", "Avg IB (rank mean)"});

  const std::vector<double> taus =
      quick_mode() ? std::vector<double>{1, 20}
                   : std::vector<double>{1, 2, 5, 10, 20};
  std::map<double, std::vector<double>> by_tau;
  for (int procs : {8, 16, 32, 64}) {
    for (double tau : taus) {
      StudyConfig cfg;
      cfg.app = "sage-1000";
      cfg.timeslice = tau;
      cfg.footprint_scale = scale;
      cfg.nprocs = procs;
      // Keep the total write volume tractable: a few iterations is
      // enough for the average.
      cfg.run_vs = quick_mode() ? 300.0 : 450.0;
      auto r = must_run(cfg);
      double ib = paper_mb(r.mean_rank_avg_ib, scale);
      table.add_row({std::to_string(procs), TextTable::num(tau, 0),
                     TextTable::num(ib)});
      by_tau[tau].push_back(ib);
    }
  }
  finish(table, "fig5_scalability.csv");

  // Trend check: per-process IB at 64 procs <= IB at 8 procs (within
  // noise), for each timeslice.
  for (const auto& [tau, series] : by_tau) {
    double p8 = series.front(), p64 = series.back();
    std::cout << "tau=" << tau << "s: IB(8)=" << TextTable::num(p8)
              << " IB(64)=" << TextTable::num(p64)
              << (p64 <= p8 * 1.05 ? "  [<= as paper]" : "  [unexpected]")
              << "\n";
  }
  return 0;
}

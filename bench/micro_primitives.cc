// Micro-benchmarks (google-benchmark) of the primitives underneath
// the measurements: write-fault absorption, interval arming, bitmap
// operations, CRC, and checkpoint serialization throughput.
#include <benchmark/benchmark.h>

#include <cstring>

#include "checkpoint/checkpointer.h"
#include "common/arena.h"
#include "common/crc32.h"
#include "common/units.h"
#include "memtrack/bitmap.h"
#include "memtrack/mprotect_engine.h"
#include "memtrack/uffd_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace {

using namespace ickpt;

void BM_BitmapSet(benchmark::State& state) {
  memtrack::AtomicBitmap bitmap(1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.set(i));
    i = (i + 4099) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_BitmapSet);

void BM_BitmapDrain(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  memtrack::AtomicBitmap bitmap(bits);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < bits; i += 3) bitmap.set(i);
    out.clear();
    state.ResumeTiming();
    bitmap.drain_set_bits(out, bits);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits / 3));
}
BENCHMARK(BM_BitmapDrain)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// Cost of one absorbed write fault (the paper's per-page overhead).
void BM_WriteFault(benchmark::State& state) {
  const std::size_t pages = 4096;
  PageArena arena(pages * page_size());
  arena.prefault();
  memtrack::MProtectEngine engine;
  auto id = engine.attach(arena.span(), "bm");
  if (!id.is_ok()) state.SkipWithError("attach failed");
  std::size_t page = 0;
  bool armed = false;
  for (auto _ : state) {
    if (page == 0) {
      state.PauseTiming();
      if (!engine.arm().is_ok()) state.SkipWithError("arm failed");
      armed = true;
      state.ResumeTiming();
    }
    arena.data()[page * page_size()] = std::byte{1};  // one fault
    page = (page + 1) % pages;
  }
  if (armed) (void)engine.collect(false);
}
BENCHMARK(BM_WriteFault);

/// Cost of one absorbed write fault via userfaultfd-wp (poller thread
/// round trip) — the modern engine's counterpart of BM_WriteFault.
void BM_WriteFaultUffd(benchmark::State& state) {
  if (!memtrack::uffd_supported()) {
    state.SkipWithError("userfaultfd-wp unsupported");
    return;
  }
  const std::size_t pages = 4096;
  PageArena arena(pages * page_size());
  arena.prefault();
  auto engine = memtrack::UffdEngine::create();
  if (!engine.is_ok()) {
    state.SkipWithError("uffd engine creation failed");
    return;
  }
  auto id = (*engine)->attach(arena.span(), "bm");
  if (!id.is_ok()) state.SkipWithError("attach failed");
  std::size_t page = 0;
  bool armed = false;
  for (auto _ : state) {
    if (page == 0) {
      state.PauseTiming();
      if (!(*engine)->arm().is_ok()) state.SkipWithError("arm failed");
      armed = true;
      state.ResumeTiming();
    }
    arena.data()[page * page_size()] = std::byte{1};
    page = (page + 1) % pages;
  }
  if (armed) (void)(*engine)->collect(false);
}
BENCHMARK(BM_WriteFaultUffd);

/// Unprotected write to the same memory: the no-tracking baseline.
void BM_WriteNoTracking(benchmark::State& state) {
  const std::size_t pages = 4096;
  PageArena arena(pages * page_size());
  arena.prefault();
  std::size_t page = 0;
  for (auto _ : state) {
    arena.data()[page * page_size()] = std::byte{1};
    page = (page + 1) % pages;
  }
}
BENCHMARK(BM_WriteNoTracking);

/// Arm cost (mprotect + bitmap clear) as a function of region size.
void BM_ArmInterval(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  PageArena arena(pages * page_size());
  arena.prefault();
  memtrack::MProtectEngine engine;
  auto id = engine.attach(arena.span(), "bm");
  if (!id.is_ok()) state.SkipWithError("attach failed");
  for (auto _ : state) {
    if (!engine.arm().is_ok()) state.SkipWithError("arm failed");
  }
  (void)engine.collect(false);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(pages * page_size()));
}
BENCHMARK(BM_ArmInterval)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

/// Full-checkpoint serialization throughput into the null backend.
void BM_CheckpointSerialize(benchmark::State& state) {
  memtrack::MProtectEngine engine;
  region::AddressSpace space(engine, "bm");
  const auto mb = static_cast<std::size_t>(state.range(0));
  auto block = space.map(mb * ickpt::kMB, region::AreaKind::kHeap, "data");
  if (!block.is_ok()) state.SkipWithError("map failed");
  std::memset(block->mem.data(), 0x42, block->mem.size());
  auto storage = storage::make_null_backend();
  auto ckpt =
      checkpoint::Checkpointer::create(space, storage.get()).value();
  for (auto _ : state) {
    auto meta = ckpt->checkpoint_full(0.0);
    if (!meta.is_ok()) state.SkipWithError("checkpoint failed");
    benchmark::DoNotOptimize(meta);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(mb * kMB));
}
BENCHMARK(BM_CheckpointSerialize)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();

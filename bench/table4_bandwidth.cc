// Reproduces Table 4: "Bandwidth Requirements (MB/s)" — maximum and
// average Incremental Bandwidth of every application at a 1 s
// checkpoint timeslice.
#include "bench/bench_util.h"

#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table("Table 4 - Bandwidth Requirements (MB/s), timeslice 1 s");
  table.set_header({"Application", "Max (paper)", "Max (measured)",
                    "Avg (paper)", "Avg (measured)"});

  for (const auto& name : apps::catalog_names()) {
    StudyConfig cfg;
    cfg.app = name;
    cfg.timeslice = 1.0;
    cfg.footprint_scale = scale;
    if (quick_mode()) cfg.run_vs = 60.0;
    auto r = must_run(cfg);
    auto t = apps::paper_targets(name).value();

    table.add_row({name, TextTable::num(t.max_ib1_mb_s),
                   TextTable::num(paper_mb(r.ib.max_ib, scale)),
                   TextTable::num(t.avg_ib1_mb_s),
                   TextTable::num(paper_mb(r.ib.avg_ib, scale))});
  }
  finish(table, "table4_bandwidth.csv");
  return 0;
}

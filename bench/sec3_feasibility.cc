// Reproduces the feasibility argument of Sections 3 and 6.3: compare
// each application's measured bandwidth requirement against the
// paper's technology ceilings (QsNet II 900 MB/s, SCSI 320 MB/s).
//
// Headline (Section 6.3): "Sage-1000MB, the most demanding
// application ... requires on average only 78.8 MB/s, 9% of the
// available peak network and 25% of the peak disk bandwidth."
#include "bench/bench_util.h"

#include "analysis/feasibility.h"
#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table(
      "Section 3/6.3 - Feasibility vs 2004 ceilings (timeslice 1 s)");
  table.set_header({"Application", "Avg IB (MB/s)", "% of net (900)",
                    "% of disk (320)", "Max IB (MB/s)", "Verdict"});

  bool all_feasible = true;
  for (const auto& name : apps::catalog_names()) {
    StudyConfig cfg;
    cfg.app = name;
    cfg.timeslice = 1.0;
    cfg.footprint_scale = scale;
    if (quick_mode()) cfg.run_vs = 60.0;
    auto r = must_run(cfg);

    // Assess at paper-equivalent magnitudes.
    analysis::IBStats paper_eq;
    paper_eq.avg_ib = r.ib.avg_ib / scale;
    paper_eq.max_ib = r.ib.max_ib / scale;
    auto v = analysis::assess_feasibility(paper_eq);
    all_feasible = all_feasible && v.feasible();

    table.add_row({name, TextTable::num(paper_mb(r.ib.avg_ib, scale)),
                   TextTable::num(v.frac_of_network_avg * 100),
                   TextTable::num(v.frac_of_storage_avg * 100),
                   TextTable::num(paper_mb(r.ib.max_ib, scale)),
                   v.feasible() ? "FEASIBLE" : "EXCEEDS"});
  }
  finish(table, "sec3_feasibility.csv");
  std::cout << (all_feasible
                    ? "conclusion: incremental checkpointing is feasible "
                      "with 2004 technology for every application (paper "
                      "agrees)\n"
                    : "conclusion: some application exceeds a ceiling "
                      "(differs from the paper!)\n");
  return 0;
}

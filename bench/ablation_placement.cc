// Ablation X3: checkpoint placement — burst boundary vs mid-burst.
//
// The paper (§6.2): "there are moments where it is more convenient to
// take a checkpoint, for example at the beginning or at the end of an
// iteration ... it may not be convenient to checkpoint during a
// processing burst."  With double-buffered applications (FT, Sweep3D)
// a checkpoint window that straddles two iterations captures parts of
// *both* buffers, inflating the checkpoint volume; boundary-aligned
// windows capture exactly one iteration's working set.
#include "bench/bench_util.h"

#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table(
      "Ablation X3 - checkpoint volume vs placement (interval = period)");
  table.set_header({"Application", "Placement", "Avg IWS/ckpt (MB)",
                    "Inflation %"});

  for (const char* app : {"ft", "sweep3d", "sage-50"}) {
    auto t = apps::paper_targets(app).value();
    double aligned_iws = 0;
    for (int mid = 0; mid < 2; ++mid) {
      StudyConfig cfg;
      cfg.app = app;
      cfg.timeslice = t.period_s;
      // phase 0: boundaries coincide with iteration ends (the kernel
      // starts iterating right when sampling starts).  phase 0.4 T:
      // boundaries land mid-processing-burst.
      cfg.sample_phase = mid ? 0.4 * t.period_s : 0.0;
      cfg.footprint_scale = scale;
      cfg.run_vs = std::min((quick_mode() ? 8.0 : 16.0) * t.period_s, 600.0);
      auto r = must_run(cfg);
      double iws_mb = paper_mb(r.ib.avg_iws, scale);
      if (!mid) aligned_iws = iws_mb;
      double inflation =
          mid && aligned_iws > 0 ? (iws_mb / aligned_iws - 1) * 100 : 0;
      table.add_row({app, mid ? "mid-burst" : "boundary",
                     TextTable::num(iws_mb),
                     mid ? TextTable::num(inflation) : "-"});
    }
  }
  finish(table, "ablation_placement.csv");
  std::cout << "boundary-aligned checkpoints capture one iteration's "
               "working set; mid-burst windows straddle two (paper §6.2)\n";
  return 0;
}

// Ablation X9: the plan-then-decode restore pipeline.
//
// Builds full+incremental chains of increasing length over a mixed
// dirty set, then restores each chain three ways — the serial
// reference (parse everything, overlay in memory), the planned
// pipeline with one decode thread, and the planned pipeline with a
// worker pool — and reports wall time, restored throughput and how
// many pages the plan decoded vs skipped as superseded.  Byte identity
// against the serial restorer is asserted on every configuration.
#include "bench/bench_util.h"

#include <chrono>
#include <cstring>
#include <filesystem>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/page.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "memtrack/explicit_engine.h"
#include "obs/metrics.h"
#include "region/address_space.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

void fill_mixed(std::span<std::byte> mem, Rng& rng) {
  const std::size_t psize = page_size();
  for (std::size_t off = 0; off + psize <= mem.size(); off += psize) {
    auto page = mem.subspan(off, psize);
    switch (rng.next_index(8)) {
      case 0:  // zero page
        std::memset(page.data(), 0, page.size());
        break;
      case 1: {  // constant-word page (RLE-able)
        std::uint64_t w = rng.next_u64();
        for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
          std::memcpy(page.data() + i, &w, 8);
        }
        break;
      }
      default:  // incompressible noise
        for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
          std::uint64_t w = rng.next_u64();
          std::memcpy(page.data() + i, &w, 8);
        }
        break;
    }
  }
}

/// Write a full checkpoint plus `incrementals` deltas, each dirtying a
/// random eighth of the pages, into `storage`.
void build_chain(storage::StorageBackend& storage, std::size_t mb,
                 int incrementals, Rng& rng) {
  memtrack::ExplicitEngine engine;
  region::AddressSpace space(engine, "bench");
  auto block = space.map(mb * kMB, region::AreaKind::kHeap, "state");
  if (!block.is_ok()) std::exit(1);
  fill_mixed(block->mem, rng);

  auto ckpt = checkpoint::Checkpointer::create(space, &storage).value();
  if (!ckpt->checkpoint_full(0.0).is_ok()) std::exit(1);
  if (!engine.arm().is_ok()) std::exit(1);

  const std::size_t psize = page_size();
  const std::size_t pages = block->mem.size() / psize;
  for (int i = 0; i < incrementals; ++i) {
    for (std::size_t k = 0; k < pages / 8; ++k) {
      const std::size_t p = rng.next_index(pages);
      auto page = block->mem.subspan(p * psize, psize);
      fill_mixed(page, rng);
      engine.note_write(page.data(), page.size());
    }
    auto snap = engine.collect(true);
    if (!snap.is_ok()) std::exit(1);
    if (!ckpt->checkpoint_incremental(*snap, 1.0 + i).is_ok()) std::exit(1);
  }
}

bool states_identical(const checkpoint::RestoredState& a,
                      const checkpoint::RestoredState& b) {
  if (a.sequence != b.sequence || a.blocks.size() != b.blocks.size()) {
    return false;
  }
  for (const auto& [id, block] : a.blocks) {
    auto it = b.blocks.find(id);
    if (it == b.blocks.end()) return false;
    if (block.data.size() != it->second.data.size()) return false;
    if (std::memcmp(block.data.data(), it->second.data.data(),
                    block.data.size()) != 0) {
      return false;
    }
  }
  return true;
}

struct Timed {
  double seconds = 0;
  std::uint64_t decoded = 0;
  std::uint64_t skipped = 0;
};

template <typename F>
Timed time_restore(F&& restore, int reps) {
  auto& reg = obs::registry();
  auto& decoded = reg.counter("restore.pages_decoded");
  auto& skipped = reg.counter("restore.pages_skipped");
  const std::uint64_t d0 = decoded.value();
  const std::uint64_t s0 = skipped.value();
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) restore();
  Timed out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      reps;
  out.decoded = (decoded.value() - d0) / reps;
  out.skipped = (skipped.value() - s0) / reps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  int mb_flag = 0;
  int reps_flag = 0;
  FlagSet flags("ablation_restore");
  args.register_flags(flags);
  flags.add_int("mb", &mb_flag, "state size in MB (0 = default)");
  flags.add_int("reps", &reps_flag, "restores per config (0 = default)");
  parse_or_exit(flags, argc, argv);

  const std::size_t mb =
      mb_flag > 0 ? static_cast<std::size_t>(mb_flag) : (args.quick ? 8 : 32);
  const int reps = reps_flag > 0 ? reps_flag : (args.quick ? 1 : 3);
  const std::vector<int> chain_sweep =
      args.quick ? std::vector<int>{3, 7} : std::vector<int>{0, 3, 7, 15, 31};
  const int pool_threads =
      std::max(2, static_cast<int>(ThreadPool::hardware_threads()));

  const double hw = static_cast<double>(ThreadPool::hardware_threads());
  TextTable table("Ablation X9 - plan-then-decode restore (" +
                  TextTable::num(static_cast<double>(mb), 0) +
                  " MB state, restores x" + TextTable::num(reps, 0) + ", " +
                  TextTable::num(hw, 0) + " hardware threads)");
  table.set_header({"Chain", "Variant", "Seconds", "MB/s", "Decoded",
                    "Skipped", "Speedup vs serial"});

  BenchJson bench_json("restore", args);
  const std::uint64_t arm_bytes =
      static_cast<std::uint64_t>(mb) * kMB * static_cast<std::uint64_t>(reps);
  Rng rng(2026);
  for (int incrementals : chain_sweep) {
    auto storage = storage::make_memory_backend();
    build_chain(*storage, mb, incrementals, rng);
    const std::string chain_label = "1+" + std::to_string(incrementals);

    // Serial reference first: its output is the identity oracle.
    checkpoint::RestoredState reference;
    Timed serial;
    bench_json.run_arm("chain" + chain_label + "_serial", arm_bytes, [&] {
      serial = time_restore(
          [&] {
            auto s = checkpoint::restore_chain_serial(*storage, 0);
            if (!s.is_ok()) std::exit(1);
            reference = std::move(s.value());
          },
          reps);
    });

    struct Variant {
      const char* name;
      int threads;
    };
    const Variant variants[] = {{"serial", 0},
                                {"planned 1T", 1},
                                {"planned pool", pool_threads}};
    for (const Variant& v : variants) {
      Timed t;
      if (v.threads == 0) {
        t = serial;
      } else {
        checkpoint::RestoreOptions opts;
        opts.decode_threads = v.threads;
        const std::string arm_name =
            "chain" + chain_label +
            (v.threads == 1 ? "_planned_1t" : "_planned_pool");
        bench_json.run_arm(arm_name, arm_bytes, [&] {
          t = time_restore(
              [&] {
                auto s = checkpoint::restore_chain(*storage, 0, opts);
                if (!s.is_ok()) std::exit(1);
                if (!states_identical(reference, *s)) {
                  std::cerr << "BYTE IDENTITY FAILED: " << v.name
                            << " differs from serial restore (chain "
                            << chain_label << ")\n";
                  std::exit(1);
                }
              },
              reps);
        });
      }
      const double set_mb = static_cast<double>(mb);
      table.add_row(
          {chain_label, v.name, TextTable::num(t.seconds, 4),
           TextTable::num(set_mb / t.seconds, 0),
           TextTable::num(static_cast<double>(t.decoded), 0),
           TextTable::num(static_cast<double>(t.skipped), 0),
           TextTable::num(serial.seconds > 0 ? serial.seconds / t.seconds : 1,
                          2)});
    }
  }
  // File-backed arms: the same chain on a real filesystem, decoded
  // once through buffered read_at and once through the zero-copy mmap
  // path (RestoreOptions::map_reads) — the ablation behind the
  // map-reads default.  Byte identity against the serial restorer is
  // asserted as above.
  {
    const int incrementals = args.quick ? 3 : 7;
    const std::string dir = "ablation_restore_chain";
    std::filesystem::remove_all(dir);
    auto file_backend = storage::make_file_backend(dir);
    if (!file_backend.is_ok()) {
      std::cerr << "file backend: " << file_backend.status().to_string()
                << "\n";
      return 1;
    }
    build_chain(**file_backend, mb, incrementals, rng);
    const std::string chain_label = "1+" + std::to_string(incrementals);

    auto reference =
        checkpoint::restore_chain_serial(**file_backend, 0);
    if (!reference.is_ok()) std::exit(1);

    double read_secs = 0;
    for (bool map_reads : {false, true}) {
      checkpoint::RestoreOptions opts;
      opts.decode_threads = pool_threads;
      opts.map_reads = map_reads;
      Timed t;
      bench_json.run_arm(std::string("file_chain") + chain_label +
                             (map_reads ? "_mmap" : "_read"),
                         arm_bytes, [&] {
                           t = time_restore(
                               [&] {
                                 auto s = checkpoint::restore_chain(
                                     **file_backend, 0, opts);
                                 if (!s.is_ok()) std::exit(1);
                                 if (!states_identical(*reference, *s)) {
                                   std::cerr << "BYTE IDENTITY FAILED: "
                                                "file-backed map_reads="
                                             << map_reads << "\n";
                                   std::exit(1);
                                 }
                               },
                               reps);
                         });
      if (!map_reads) read_secs = t.seconds;
      table.add_row(
          {chain_label + " (file)", map_reads ? "mmap decode" : "read decode",
           TextTable::num(t.seconds, 4),
           TextTable::num(static_cast<double>(mb) / t.seconds, 0),
           TextTable::num(static_cast<double>(t.decoded), 0),
           TextTable::num(static_cast<double>(t.skipped), 0),
           TextTable::num(map_reads && t.seconds > 0
                              ? read_secs / t.seconds
                              : 1.0,
                          2)});
    }
    std::filesystem::remove_all(dir);
  }
  // Segment-backed arms: the same shape of chain in the log-structured
  // store, decoded through read_at and through per-object mmap windows.
  // Byte identity against the serial restorer is asserted as above.
  {
    const int incrementals = args.quick ? 3 : 7;
    const std::string dir = "ablation_restore_segchain";
    std::filesystem::remove_all(dir);
    auto seg_backend = storage::make_segment_backend(dir);
    if (!seg_backend.is_ok()) {
      std::cerr << "segment backend: " << seg_backend.status().to_string()
                << "\n";
      return 1;
    }
    build_chain(**seg_backend, mb, incrementals, rng);
    const std::string chain_label = "1+" + std::to_string(incrementals);

    auto reference = checkpoint::restore_chain_serial(**seg_backend, 0);
    if (!reference.is_ok()) std::exit(1);

    double read_secs = 0;
    for (bool map_reads : {false, true}) {
      checkpoint::RestoreOptions opts;
      opts.decode_threads = pool_threads;
      opts.map_reads = map_reads;
      Timed t;
      bench_json.run_arm(std::string("segment_chain") + chain_label +
                             (map_reads ? "_mmap" : "_read"),
                         arm_bytes, [&] {
                           t = time_restore(
                               [&] {
                                 auto s = checkpoint::restore_chain(
                                     **seg_backend, 0, opts);
                                 if (!s.is_ok()) std::exit(1);
                                 if (!states_identical(*reference, *s)) {
                                   std::cerr << "BYTE IDENTITY FAILED: "
                                                "segment-backed map_reads="
                                             << map_reads << "\n";
                                   std::exit(1);
                                 }
                               },
                               reps);
                         });
      if (!map_reads) read_secs = t.seconds;
      table.add_row(
          {chain_label + " (seg)", map_reads ? "mmap decode" : "read decode",
           TextTable::num(t.seconds, 4),
           TextTable::num(static_cast<double>(mb) / t.seconds, 0),
           TextTable::num(static_cast<double>(t.decoded), 0),
           TextTable::num(static_cast<double>(t.skipped), 0),
           TextTable::num(map_reads && t.seconds > 0
                              ? read_secs / t.seconds
                              : 1.0,
                          2)});
    }
    seg_backend->reset();
    std::filesystem::remove_all(dir);
  }

  finish(table, "ablation_restore.csv");
  bench_json.write(args);
  std::cout << "the plan decodes each surviving page once (Skipped = "
               "superseded writes the serial path decoded for nothing); "
               "shards parallelize the remaining decode work\n";
  if (hw < 2) {
    std::cout << "note: only " << hw << " hardware thread available -- "
                 "pool speedup reflects scheduling overhead, not scaling; "
                 "run on a multi-core host to observe it\n";
  }
  return 0;
}

// Reproduces Section 6.5 (Intrusiveness): the instrumentation's
// slowdown of the application, by wall-clock, for a range of
// timeslices.  The paper reports < 10% for Sage-1000MB at a 1 s
// timeslice, decreasing as the timeslice grows (page faults amortized
// by data reuse).
//
// Here the proxy kernel runs for a fixed amount of *virtual* time and
// we measure the *wall* time with (a) no tracking, and (b) the
// mprotect engine armed with per-timeslice re-protection.  The fault
// counts are reported too, making the mechanism visible.
#include "bench/bench_util.h"

#include <chrono>

#include "apps/scripted_kernel.h"
#include "memtrack/mprotect_engine.h"
#include "memtrack/tracker.h"
#include "obs/metrics.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"

using namespace ickpt;
using namespace ickpt::bench;

namespace {

struct RunResult {
  double wall_seconds = 0;
  std::uint64_t faults = 0;
  std::size_t slices = 0;
};

RunResult run_once(const std::string& app, double scale, double run_vs,
                   bool tracked, double timeslice) {
  auto clock_start = std::chrono::steady_clock::now();
  RunResult out;

  memtrack::MProtectEngine engine;
  sim::VirtualClock clock;
  apps::AppConfig cfg;
  cfg.footprint_scale = scale;
  auto kernel = apps::make_app(app, cfg, engine, clock);
  if (!kernel.is_ok()) std::exit(1);
  if (!(*kernel)->init().is_ok()) std::exit(1);

  sim::SamplerOptions sopts;
  sopts.timeslice = timeslice;
  sim::TimesliceSampler sampler(engine, clock, sopts);
  if (tracked) {
    if (!sampler.start().is_ok()) std::exit(1);
  }
  if (!(*kernel)->run_until(clock, clock.now() + run_vs).is_ok()) {
    std::exit(1);
  }
  if (tracked) {
    out.slices = sampler.series().size();
    sampler.stop();
  }
  out.faults = engine.counters().faults_handled;
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - clock_start)
                         .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  std::string app = "sage-100";  // long-iteration app, moderate footprint
  FlagSet flags("sec65_intrusiveness");
  args.register_flags(flags);
  flags.add_string("app", &app, "proxy application to instrument");
  parse_or_exit(flags, argc, argv);

  const double scale = args.scale;
  const double run_vs = args.quick ? 100.0 : 200.0;

  // Warm-up + baseline (best of 3): untracked run.
  double base = 1e100;
  for (int i = 0; i < 3; ++i) {
    base = std::min(base, run_once(app, scale, run_vs, false, 1.0)
                              .wall_seconds);
  }

  // The proxy kernel compresses `run_vs` virtual seconds into a few
  // wall milliseconds, so the *relative* wall slowdown here is not
  // comparable to the paper's.  The paper-comparable number is the
  // projected slowdown for a real-time, full-scale run: tracking
  // overhead in wall seconds, per virtual second of application time,
  // un-scaled (the fault count is proportional to the footprint).
  TextTable table("Section 6.5 - Instrumentation overhead (" +
                  std::string(app) + ", untracked baseline " +
                  TextTable::num(base * 1000, 1) + " ms for " +
                  TextTable::num(run_vs, 0) + " virtual s)");
  table.set_header({"Timeslice (s)", "Faults", "Fault cost (us)",
                    "Overhead (ms)", "Projected slowdown %"});

  for (double tau : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    RunResult r = run_once(app, scale, run_vs, true, tau);
    double overhead = std::max(0.0, r.wall_seconds - base);
    double per_fault_us =
        r.faults > 0 ? overhead / static_cast<double>(r.faults) * 1e6 : 0;
    // Projection: the real application dirties 1/scale times more
    // pages per (real) second; the overhead scales with the faults.
    double projected = overhead / (run_vs * scale) * 100.0;
    table.add_row({TextTable::num(tau, 1), std::to_string(r.faults),
                   TextTable::num(per_fault_us, 2),
                   TextTable::num(overhead * 1000, 1),
                   TextTable::num(projected, 1)});
  }
  finish(table, "sec65_intrusiveness.csv");
  std::cout << "paper: < 10% slowdown at a 1 s timeslice for Sage, "
               "decreasing with longer timeslices (page faults amortized "
               "by data reuse)\n";

  // The same intrusiveness question, asked of the observability layer
  // itself: a tracked run with metric recording on vs compiled-in but
  // idle (obs::set_enabled(false) leaves one branch per site).  The
  // delta must stay under 1% or the instrumentation would distort the
  // very overhead numbers above.
  // Interleaved best-of-N: the minimum wall time estimates each arm's
  // noise floor, which is the only stable statistic at this effect
  // size (two clock reads per fault ~ 0.2% of a tracked run).
  const int obs_reps = args.quick ? 7 : 11;
  double with_obs = 1e100;
  double without_obs = 1e100;
  for (int i = 0; i < obs_reps; ++i) {
    obs::set_enabled(true);
    with_obs = std::min(
        with_obs, run_once(app, scale, run_vs, true, 1.0).wall_seconds);
    obs::set_enabled(false);
    without_obs = std::min(
        without_obs, run_once(app, scale, run_vs, true, 1.0).wall_seconds);
  }
  obs::set_enabled(true);
  const double obs_pct =
      without_obs > 0 ? (with_obs - without_obs) / without_obs * 100.0 : 0;

  TextTable obs_table("Metrics-layer overhead (tracked run, 1 s "
                      "timeslice, best of " +
                      TextTable::num(obs_reps, 0) + ")");
  obs_table.set_header({"Recording", "Wall (ms)", "Overhead %"});
  obs_table.add_row({"idle (compiled in)", TextTable::num(without_obs * 1000, 2),
                     "0.0"});
  obs_table.add_row({"enabled", TextTable::num(with_obs * 1000, 2),
                     TextTable::num(obs_pct, 2)});
  finish(obs_table, "sec65_obs_overhead.csv");
  std::cout << "target: < 1% (relaxed atomics + one monotonic clock read "
               "per fault)\n";

  // And of the span-tracing layer: the fault handler emits one ring
  // event per fault when tracing is on, and pays one relaxed load when
  // it is compiled in but off.  Either cost times the fault count is
  // ~1 ms on a ~100 ms run — well below this host's multi-ms scheduler
  // jitter — so, as for the paper projection above, the per-event cost
  // is measured directly (a tight loop over the emit path, cycling the
  // full ring so cache behaviour matches steady state) and projected
  // onto the fault count of a tracked run.  Wall times of one
  // interleaved pair of runs are reported for context only.
  obs::start_tracing();
  const double trace_on_wall =
      run_once(app, scale, run_vs, true, 1.0).wall_seconds;
  obs::stop_tracing();
  const RunResult off_run = run_once(app, scale, run_vs, true, 1.0);
  const double trace_off_wall = off_run.wall_seconds;
  const std::uint64_t trace_faults = off_run.faults;

  const std::uint16_t t_probe =
      obs::trace_name("bench.sec65.probe", obs::TraceCat::kBench);
  const int probe_n = 1'000'000;
  auto probe = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < probe_n; ++i) {
      obs::trace_instant(t_probe, static_cast<std::uint64_t>(i));
    }
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - t0)
               .count() /
           probe_n;
  };
  const double dormant_ns = probe();
  obs::start_tracing();
  const double emit_ns = probe();
  obs::stop_tracing();

  auto projected_pct = [&](double per_event_ns) {
    return trace_off_wall > 0
               ? per_event_ns * static_cast<double>(trace_faults) /
                     (trace_off_wall * 1e9) * 100.0
               : 0;
  };
  TextTable trace_table(
      "Span-tracing overhead (tracked run, 1 s timeslice, " +
      TextTable::num(static_cast<double>(trace_faults), 0) +
      " faults, projected from measured per-event cost)");
  trace_table.set_header({"Tracing", "ns/event", "Wall (ms)", "Overhead %"});
  trace_table.add_row({"off (compiled in)", TextTable::num(dormant_ns, 1),
                       TextTable::num(trace_off_wall * 1000, 2),
                       TextTable::num(projected_pct(dormant_ns), 3)});
  trace_table.add_row({"on (lock-free ring emit)",
                       TextTable::num(emit_ns, 1),
                       TextTable::num(trace_on_wall * 1000, 2),
                       TextTable::num(projected_pct(emit_ns), 2)});
  finish(trace_table, "sec65_trace_overhead.csv");
  std::cout << "target: < 1% with tracing on, ~0% compiled in but off "
               "(one relaxed load per dormant site)\n";
  return 0;
}

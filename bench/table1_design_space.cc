// Reproduces Table 1: "Comparison of the Checkpointing Abstraction
// Levels" — the paper's qualitative design-space table (Section 2.1),
// annotated with where this repository's implementations sit.
//
// This table is definitional rather than measured; reproducing it
// keeps the per-table index complete and documents the design-space
// position of each engine we built.
#include "bench/bench_util.h"

#include "memtrack/tracker.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  TextTable table("Table 1 - Checkpointing abstraction levels");
  table.set_header({"Level", "Transparency", "Portability",
                    "Checkpoint size", "Interval flexibility",
                    "Granularity"});
  table.add_row({"Application (library support)", "Low", "High", "Low",
                 "Low", "Data structure"});
  table.add_row({"Application (compiler support)", "Medium", "High",
                 "Medium", "Low", "Data structure"});
  table.add_row({"Run-time library", "Medium", "Medium", "High", "High",
                 "Memory segment"});
  table.add_row({"Operating system", "High", "Low", "High", "High",
                 "Memory page"});
  table.add_row({"Hardware", "High", "Very low", "High", "High",
                 "Cache line"});
  finish(table, "table1_design_space.csv");

  TextTable ours("Where this repository's engines sit");
  ours.set_header({"Engine", "Level", "Available here"});
  ours.add_row({"mprotect + SIGSEGV (paper's mechanism)",
                "run-time library over OS paging", "yes"});
  ours.add_row({"userfaultfd write-protect",
                "operating system (delegated faults)",
                memtrack::uffd_supported() ? "yes" : "no (kernel)"});
  ours.add_row({"soft-dirty pagemap (CRIU-style)",
                "operating system (page-table bits)",
                memtrack::soft_dirty_supported() ? "yes" : "no (kernel)"});
  ours.add_row({"explicit notification",
                "application with library support", "yes"});
  ours.print(std::cout);

  std::cout << "the paper's position: OS-level page-granular tracking "
               "offers the transparency and interval flexibility that "
               "autonomic checkpointing needs (Section 2.1)\n";
  return 0;
}

// Reproduces Table 2: "Memory Footprint Size (MB)" — maximum and
// average data-memory footprint of every application.
//
// Measured values are reported in paper-equivalent MB (scaled runs
// un-scaled by ICKPT_BENCH_SCALE).
#include "bench/bench_util.h"

#include "apps/catalog.h"

using namespace ickpt;
using namespace ickpt::bench;

int main() {
  const double scale = bench_scale();
  TextTable table("Table 2 - Memory Footprint Size (MB), scale " +
                  TextTable::num(scale, 4));
  table.set_header({"Application", "Max (paper)", "Max (measured)",
                    "Avg (paper)", "Avg (measured)"});

  for (const auto& name : apps::catalog_names()) {
    StudyConfig cfg;
    cfg.app = name;
    cfg.timeslice = 1.0;
    cfg.footprint_scale = scale;
    if (quick_mode()) cfg.run_vs = 60.0;
    auto r = must_run(cfg);
    auto t = apps::paper_targets(name).value();

    table.add_row({name, TextTable::num(t.footprint_max_mb),
                   TextTable::num(paper_mb(r.footprint.max_bytes, scale)),
                   TextTable::num(t.footprint_avg_mb),
                   TextTable::num(paper_mb(r.footprint.avg_bytes, scale))});
  }
  finish(table, "table2_footprint.csv");
  return 0;
}

// Ablation X1: dirty-tracking engine comparison.
//
// The paper's mechanism (mprotect + SIGSEGV) pays one fault per first
// write to a page per timeslice; the modern soft-dirty engine pays an
// O(pages) pagemap scan per collection instead.  Fault batching
// (unprotecting N pages per fault) trades IWS over-approximation for
// fewer faults.  This bench measures all of it on one deterministic
// workload.
#include "bench/bench_util.h"

#include <chrono>

#include "common/arena.h"
#include "common/rng.h"
#include "memtrack/mprotect_engine.h"
#include "memtrack/softdirty_engine.h"
#include "memtrack/uffd_engine.h"
#include "memtrack/tracker.h"

using namespace ickpt;
using namespace ickpt::bench;
using namespace ickpt::memtrack;

namespace {

struct WorkloadResult {
  double wall_seconds = 0;
  std::size_t iws_pages_total = 0;
  EngineCounters counters;
};

/// Fixed workload: `intervals` timeslices, each writing `writes_per`
/// random positions in a `pages`-page arena (with page reuse).
WorkloadResult run_workload(DirtyTracker& tracker, std::size_t pages,
                            int intervals, int writes_per) {
  PageArena arena(pages * page_size());
  arena.prefault();
  auto id = tracker.attach(arena.span(), "bench");
  if (!id.is_ok()) std::exit(1);

  auto t0 = std::chrono::steady_clock::now();
  if (!tracker.arm().is_ok()) std::exit(1);
  WorkloadResult out;
  Rng rng(42);  // same seed for every engine
  for (int i = 0; i < intervals; ++i) {
    for (int w = 0; w < writes_per; ++w) {
      std::size_t off = rng.next_index(pages * page_size());
      arena.data()[off] = std::byte{1};
      tracker.note_write(arena.data() + off, 1);
    }
    auto snap = tracker.collect(/*rearm=*/true);
    if (!snap.is_ok()) std::exit(1);
    out.iws_pages_total += snap->dirty_pages();
  }
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  out.counters = tracker.counters();
  (void)tracker.detach(*id);
  return out;
}

}  // namespace

int main() {
  const std::size_t pages = quick_mode() ? 4096 : 16384;  // 16/64 MB
  const int intervals = quick_mode() ? 20 : 50;
  const int writes_per = static_cast<int>(pages);  // ~63% pages/interval

  TextTable table("Ablation X1 - engine cost on identical workload (" +
                  std::to_string(pages) + " pages x " +
                  std::to_string(intervals) + " intervals)");
  table.set_header({"Engine", "Wall (s)", "IWS pages (sum)", "Faults",
                    "Pagemap entries"});

  auto row = [&](const std::string& label, DirtyTracker& tracker) {
    auto r = run_workload(tracker, pages, intervals, writes_per);
    table.add_row({label, TextTable::num(r.wall_seconds, 3),
                   std::to_string(r.iws_pages_total),
                   std::to_string(r.counters.faults_handled),
                   std::to_string(r.counters.pages_scanned)});
  };

  {
    MProtectEngine engine;  // the paper's mechanism
    row("mprotect (batch=1, paper)", engine);
  }
  for (std::uint32_t batch : {4u, 16u}) {
    MProtectEngine::Options opts;
    opts.fault_batch_pages = batch;
    MProtectEngine engine(opts);
    row("mprotect (batch=" + std::to_string(batch) + ")", engine);
  }
  if (soft_dirty_supported()) {
    auto engine = SoftDirtyEngine::create();
    if (engine.is_ok()) row("soft-dirty (CRIU-style)", **engine);
  } else {
    table.add_row({"soft-dirty (CRIU-style)", "unsupported kernel", "-",
                   "-", "-"});
  }
  if (uffd_supported()) {
    auto engine = UffdEngine::create();
    if (engine.is_ok()) row("userfaultfd-wp (modern)", **engine);
  } else {
    table.add_row({"userfaultfd-wp (modern)", "unsupported kernel", "-",
                   "-", "-"});
  }
  {
    auto engine = make_tracker(EngineKind::kExplicit);
    row("explicit (oracle)", **engine);
  }

  finish(table, "ablation_engines.csv");
  std::cout << "note: batched mprotect trades IWS over-approximation "
               "(larger IWS sum) for fewer faults\n";
  return 0;
}

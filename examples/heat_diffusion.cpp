// A genuine scientific mini-app — 2D heat diffusion (explicit Euler,
// 5-point stencil) with a moving hot spot — monitored transparently.
//
// Demonstrates the paper's core observation on a real solver: the
// solver's bulk-synchronous structure (sweep, then halo bookkeeping)
// shows up directly in the IWS series, and the bandwidth needed to
// checkpoint it incrementally is modest.
//
//   $ ./heat_diffusion [grid_n=1024] [steps=300]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/period.h"
#include "common/arena.h"
#include "common/units.h"
#include "core/monitor.h"

int main(int argc, char** argv) {
  using namespace ickpt;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 300;

  PageArena grid_a(n * n * sizeof(double));
  PageArena grid_b(n * n * sizeof(double));
  auto* a = reinterpret_cast<double*>(grid_a.data());
  auto* b = reinterpret_cast<double*>(grid_b.data());
  auto at = [n](double* g, std::size_t i, std::size_t j) -> double& {
    return g[i * n + j];
  };

  auto monitor = Monitor::create({memtrack::EngineKind::kMProtect, 0.25});
  if (!monitor.is_ok()) return 1;
  (void)(*monitor)->attach(grid_a.span(), "grid_a");
  (void)(*monitor)->attach(grid_b.span(), "grid_b");
  if (!(*monitor)->start().is_ok()) return 1;

  const double alpha = 0.2;
  for (int s = 0; s < steps; ++s) {
    // Moving heat source.
    std::size_t ci = n / 2 +
                     static_cast<std::size_t>(
                         (std::sin(s * 0.05) * 0.25 + 0.25) *
                         static_cast<double>(n));
    at(a, ci % n, (ci * 7) % n) = 100.0;

    double* src = (s % 2 == 0) ? a : b;
    double* dst = (s % 2 == 0) ? b : a;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) {
        dst[i * n + j] =
            src[i * n + j] +
            alpha * (src[(i - 1) * n + j] + src[(i + 1) * n + j] +
                     src[i * n + j - 1] + src[i * n + j + 1] -
                     4.0 * src[i * n + j]);
      }
    }
  }
  (*monitor)->stop();

  auto series = (*monitor)->series();
  auto stats = (*monitor)->ib_stats(1);
  std::printf("grid %zux%zu (%s per buffer), %d steps\n", n, n,
              format_bytes(n * n * sizeof(double)).c_str(), steps);
  std::printf("slices: %zu  avg IWS: %s  avg IB: %s  max IB: %s\n",
              stats.samples,
              format_bytes(static_cast<std::size_t>(stats.avg_iws)).c_str(),
              format_bandwidth(stats.avg_ib).c_str(),
              format_bandwidth(stats.max_ib).c_str());

  // Double buffering: each step writes one whole grid -> per-slice
  // IWS ~ half the footprint, exactly the pattern the paper exploits.
  std::printf("avg IWS / footprint: %.0f%%\n", stats.avg_ratio * 100.0);
  std::printf("%s\n", analysis::describe((*monitor)->feasibility(1)).c_str());

  auto est = analysis::detect_period(series.iws_bytes_series(), 0.25);
  if (est.found) {
    std::printf("detected write-pattern period: %.2f s (confidence %.2f)\n",
                est.period, est.confidence);
  }
  return 0;
}

// Fault-tolerant Jacobi solver: the full checkpoint/rollback-recovery
// loop the paper argues is feasible.
//
// A 1D Jacobi iteration runs with incremental checkpoints (mprotect
// dirty tracking -> page-granular deltas -> file storage) taken every
// few sweeps.  Midway we simulate a crash by throwing the in-memory
// state away, then recover from the checkpoint chain and continue.
// The final answer must equal an uninterrupted run bit for bit.
//
//   $ ./fault_tolerant_solver [cells=2000000] [sweeps=60]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/units.h"
#include "memtrack/mprotect_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

using namespace ickpt;

namespace {

/// One Jacobi sweep over the block (fixed boundary values).
void sweep(double* x, double* next, std::size_t n) {
  next[0] = 1.0;
  next[n - 1] = -1.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    next[i] = 0.5 * (x[i - 1] + x[i + 1]);
  }
  std::memcpy(x, next, n * sizeof(double));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cells =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000000;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 60;
  const int ckpt_every = 5;
  const int crash_at = sweeps / 2;

  const std::string dir = "/tmp/ickpt_fault_tolerant_demo";
  std::filesystem::remove_all(dir);
  auto storage = storage::make_file_backend(dir);
  if (!storage.is_ok()) return 1;

  // ---------------- reference: uninterrupted run -------------------
  std::vector<double> reference(cells, 0.0);
  {
    std::vector<double> scratch(cells);
    for (int s = 0; s < sweeps; ++s) {
      sweep(reference.data(), scratch.data(), cells);
    }
  }

  // ---------------- run 1: compute with checkpoints, then crash ----
  int completed_at_crash = 0;
  {
    memtrack::MProtectEngine engine;
    region::AddressSpace space(engine, "solver");
    auto x_blk = space.map(cells * sizeof(double),
                           region::AreaKind::kHeap, "x");
    auto scratch_blk = space.map(cells * sizeof(double),
                                 region::AreaKind::kHeap, "scratch");
    auto step_blk = space.map(page_size(), region::AreaKind::kHeap, "step");
    if (!x_blk.is_ok() || !scratch_blk.is_ok() || !step_blk.is_ok()) return 1;
    auto* x = reinterpret_cast<double*>(x_blk->mem.data());
    auto* scratch = reinterpret_cast<double*>(scratch_blk->mem.data());
    auto* step_counter = reinterpret_cast<std::int64_t*>(
        step_blk->mem.data());

    auto made = checkpoint::Checkpointer::create(space, storage->get());
    if (!made.is_ok()) return 1;
    auto ckpt = std::move(made.value());
    if (!engine.arm().is_ok()) return 1;

    for (int s = 0; s < sweeps; ++s) {
      if (s == crash_at) {
        std::printf("simulated crash after sweep %d "
                    "(in-memory state lost)\n", s);
        completed_at_crash = s;
        break;
      }
      sweep(x, scratch, cells);
      *step_counter = s + 1;
      if ((s + 1) % ckpt_every == 0) {
        auto snap = engine.collect(/*rearm=*/true);
        if (!snap.is_ok()) return 1;
        auto meta = ckpt->checkpoint_incremental(*snap,
                                                static_cast<double>(s + 1));
        if (!meta.is_ok()) {
          std::fprintf(stderr, "checkpoint: %s\n",
                       meta.status().to_string().c_str());
          return 1;
        }
        std::printf("  ckpt seq %llu (%s): %s payload\n",
                    static_cast<unsigned long long>(meta->sequence),
                    meta->kind == checkpoint::Kind::kFull ? "full" : "incr",
                    format_bytes(meta->payload_pages * page_size()).c_str());
      }
    }
  }  // engine, space, solver state destroyed: the "crash"

  // ---------------- run 2: recover and finish ----------------------
  auto state = checkpoint::restore_chain(**storage, 0);
  if (!state.is_ok()) {
    std::fprintf(stderr, "restore: %s\n",
                 state.status().to_string().c_str());
    return 1;
  }
  memtrack::MProtectEngine engine;
  region::AddressSpace space(engine, "recovered");
  auto mapping = checkpoint::materialize(*state, space);
  if (!mapping.is_ok()) return 1;

  // Blocks were mapped in id order: x, scratch, step.
  auto blocks = space.blocks();
  auto* x = reinterpret_cast<double*>(
      space.block_span(blocks[0].id)->data());
  auto* scratch = reinterpret_cast<double*>(
      space.block_span(blocks[1].id)->data());
  auto* step_counter = reinterpret_cast<std::int64_t*>(
      space.block_span(blocks[2].id)->data());

  int resume_from = static_cast<int>(*step_counter);
  std::printf("recovered at sweep %d (crash lost %d uncheckpointed "
              "sweeps)\n", resume_from, completed_at_crash - resume_from);
  for (int s = resume_from; s < sweeps; ++s) {
    sweep(x, scratch, cells);
  }

  bool equal = std::memcmp(x, reference.data(),
                           cells * sizeof(double)) == 0;
  std::printf("result %s the uninterrupted run (%zu cells, %d sweeps)\n",
              equal ? "MATCHES" : "DIFFERS FROM", cells, sweeps);
  std::filesystem::remove_all(dir);
  return equal ? 0 : 1;
}

// Autonomic restart with RecoverableRun: the self-healing execution
// loop the paper's autonomic-computing vision calls for (§1), in ~40
// lines of application code.
//
// The program runs a blocked matrix power iteration.  Invoked with
// "--crash-at N" it aborts the computation after N steps (simulating
// a node failure); run again against the same checkpoint directory it
// resumes where the last checkpoint left off.  A driver mode
// ("--demo", the default) performs both phases in one invocation and
// verifies the recovered result.
//
//   $ ./autonomic_restart            # crash + recover + verify
//   $ ./autonomic_restart --dir /tmp/ckpts --crash-at 7   # phase 1
//   $ ./autonomic_restart --dir /tmp/ckpts                # phase 2
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/recoverable.h"
#include "storage/backend.h"

using namespace ickpt;

namespace {

constexpr std::size_t kN = 512;         // matrix dimension
constexpr int kTotalSteps = 12;

/// One power-iteration step: v <- normalize(A v), with A implicit
/// (tridiagonal stencil), plus an energy accumulator.
void step_once(double* v, double* scratch, double* energy) {
  for (std::size_t i = 0; i < kN * kN; ++i) {
    double left = i >= 1 ? v[i - 1] : 0.0;
    double right = i + 1 < kN * kN ? v[i + 1] : 0.0;
    scratch[i] = 0.3 * left + 0.4 * v[i] + 0.3 * right + 1e-9;
  }
  double norm = 0;
  for (std::size_t i = 0; i < kN * kN; ++i) norm += scratch[i] * scratch[i];
  norm = std::sqrt(norm);
  for (std::size_t i = 0; i < kN * kN; ++i) v[i] = scratch[i] / norm;
  *energy += norm;
}

int run_phase(storage::StorageBackend& backend, int crash_at,
              double* final_energy) {
  RecoverableRun::Options opts;
  opts.checkpoint_every = 2;
  auto run = RecoverableRun::create(backend, opts);
  if (!run.is_ok()) return -1;

  auto vec = (*run)->add_block(kN * kN * sizeof(double), "eigvec");
  auto scratch = (*run)->add_block(kN * kN * sizeof(double), "scratch");
  auto acc = (*run)->add_block(sizeof(double), "energy");
  if (!vec.is_ok() || !scratch.is_ok() || !acc.is_ok()) return -1;

  auto first = (*run)->begin();
  if (!first.is_ok()) {
    std::fprintf(stderr, "begin: %s\n", first.status().to_string().c_str());
    return -1;
  }
  auto* v = reinterpret_cast<double*>(vec->data());
  auto* s = reinterpret_cast<double*>(scratch->data());
  auto* energy = reinterpret_cast<double*>(acc->data());
  if (*first == 0) {
    for (std::size_t i = 0; i < kN * kN; ++i) {
      v[i] = 1.0 / static_cast<double>(kN);
    }
    std::printf("fresh start\n");
  } else {
    std::printf("recovered: resuming at step %d (energy so far %.6f)\n",
                *first, *energy);
  }

  for (int st = *first; st < kTotalSteps; ++st) {
    if (st == crash_at) {
      std::printf("simulated failure at step %d\n", st);
      return kTotalSteps + 1;  // sentinel: crashed
    }
    step_once(v, s, energy);
    if (!(*run)->did_step(st).is_ok()) return -1;
  }
  *final_energy = *energy;
  return kTotalSteps;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "/tmp/ickpt_autonomic_demo";
  int crash_at = -1;
  bool demo = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
      demo = false;
    } else if (std::strcmp(argv[i], "--crash-at") == 0 && i + 1 < argc) {
      crash_at = std::atoi(argv[++i]);
      demo = false;
    }
  }

  if (demo) std::filesystem::remove_all(dir);
  auto backend = storage::make_file_backend(dir);
  if (!backend.is_ok()) return 1;

  if (!demo) {
    double energy = 0;
    int rc = run_phase(**backend, crash_at, &energy);
    if (rc == kTotalSteps) std::printf("done: energy %.6f\n", energy);
    return rc == kTotalSteps || rc == kTotalSteps + 1 ? 0 : 1;
  }

  // Demo: reference run (no crash, fresh storage elsewhere)...
  std::string ref_dir = dir + "_ref";
  std::filesystem::remove_all(ref_dir);
  auto ref_backend = storage::make_file_backend(ref_dir);
  if (!ref_backend.is_ok()) return 1;
  double ref_energy = 0;
  if (run_phase(**ref_backend, -1, &ref_energy) != kTotalSteps) return 1;

  // ...then crash at step 7 and recover.
  double energy = 0;
  if (run_phase(**backend, 7, &energy) != kTotalSteps + 1) return 1;
  if (run_phase(**backend, -1, &energy) != kTotalSteps) return 1;

  bool match = std::abs(energy - ref_energy) < 1e-12;
  std::printf("recovered energy %.9f, reference %.9f -> %s\n", energy,
              ref_energy, match ? "MATCH" : "MISMATCH");
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);
  return match ? 0 : 1;
}

// Quickstart: attach the monitor to your own arrays, run your
// computation unmodified, and read back the incremental-checkpointing
// feasibility numbers — the library-level equivalent of the paper's
// LD_PRELOAD instrumentation.
//
//   $ ./quickstart
//
// The "application" here is a toy relaxation loop over two fields.
#include <cstdio>

#include "common/arena.h"
#include "common/units.h"
#include "core/monitor.h"

int main() {
  using namespace ickpt;

  // 1. Your application data: two page-aligned fields (any page-aligned
  //    memory works; PageArena is a convenience).
  constexpr std::size_t kCells = 4 * 1024 * 1024;  // 32 MB of doubles
  PageArena temperature(kCells * sizeof(double));
  PageArena pressure(kCells * sizeof(double));
  auto* temp = reinterpret_cast<double*>(temperature.data());
  auto* pres = reinterpret_cast<double*>(pressure.data());

  // 2. Create a monitor: mprotect-based dirty tracking (the paper's
  //    mechanism), sampling every 100 ms of wall time.
  MonitorOptions options;
  options.engine = memtrack::EngineKind::kMProtect;
  options.timeslice = 0.5;
  auto monitor = Monitor::create(options);
  if (!monitor.is_ok()) {
    std::fprintf(stderr, "monitor: %s\n",
                 monitor.status().to_string().c_str());
    return 1;
  }
  (void)(*monitor)->attach(temperature.span(), "temperature");
  (void)(*monitor)->attach(pressure.span(), "pressure");

  // 3. Run the application under monitoring.  Note the loop knows
  //    nothing about checkpointing: total transparency.
  if (auto st = (*monitor)->start(); !st.is_ok()) {
    std::fprintf(stderr, "start: %s\n", st.to_string().c_str());
    return 1;
  }
  for (int step = 0; step < 40; ++step) {
    // Each step updates all temperatures but only 1/8 of pressures —
    // the monitor will see the difference in the IWS.
    for (std::size_t i = 1; i + 1 < kCells; ++i) {
      temp[i] = 0.25 * temp[i - 1] + 0.5 * temp[i] + 0.25 * temp[i + 1];
    }
    std::size_t band = kCells / 8;
    std::size_t start = (static_cast<std::size_t>(step) % 8) * band;
    for (std::size_t i = start; i < start + band; ++i) {
      pres[i] += 0.001 * temp[i];
    }
  }
  (*monitor)->stop();

  // 4. Read the measurements.
  auto stats = (*monitor)->ib_stats(/*skip_first=*/1);
  auto verdict = (*monitor)->feasibility(1);
  std::printf("timeslices observed : %zu\n", stats.samples);
  std::printf("avg IWS per slice   : %s\n",
              format_bytes(static_cast<std::size_t>(stats.avg_iws)).c_str());
  std::printf("avg IB              : %s\n",
              format_bandwidth(stats.avg_ib).c_str());
  std::printf("max IB              : %s\n",
              format_bandwidth(stats.max_ib).c_str());
  std::printf("verdict vs 2004 tech: %s\n",
              analysis::describe(verdict).c_str());
  return verdict.feasible() ? 0 : 1;
}

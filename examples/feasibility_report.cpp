// Condensed reproduction of the paper's study for one application:
// run the calibrated proxy kernel under timeslice sampling and print
// the characterization (footprint, period, overwrite fraction) and
// the bandwidth requirement vs the 2004 technology ceilings.
//
//   $ ./feasibility_report [app=sage-100] [timeslice=1.0] [ranks=1]
//
// Apps: sage-1000 sage-500 sage-100 sage-50 sweep3d sp lu bt ft
#include <cstdio>
#include <cstdlib>

#include "analysis/feasibility.h"
#include "analysis/period.h"
#include "apps/catalog.h"
#include "common/units.h"
#include "core/study.h"

int main(int argc, char** argv) {
  using namespace ickpt;

  StudyConfig cfg;
  cfg.app = argc > 1 ? argv[1] : "sage-100";
  cfg.timeslice = argc > 2 ? std::atof(argv[2]) : 1.0;
  cfg.nprocs = argc > 3 ? std::atoi(argv[3]) : 1;
  cfg.footprint_scale = 1.0 / 16.0;

  auto targets = apps::paper_targets(cfg.app);
  if (!targets.is_ok()) {
    std::fprintf(stderr, "unknown app '%s'\n", cfg.app.c_str());
    std::fprintf(stderr, "apps:");
    for (const auto& n : apps::catalog_names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  std::printf("== %s (scale %.4f, timeslice %.1fs, %d rank%s) ==\n",
              cfg.app.c_str(), cfg.footprint_scale, cfg.timeslice,
              cfg.nprocs, cfg.nprocs == 1 ? "" : "s");
  auto r = run_study(cfg);
  if (!r.is_ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 r.status().to_string().c_str());
    return 1;
  }

  const double scale = cfg.footprint_scale;
  auto unscaled_mb = [scale](double bytes) {
    return bytes / static_cast<double>(kMB) / scale;
  };

  std::printf("footprint  max %7.1f MB (paper %7.1f)   avg %7.1f MB "
              "(paper %7.1f)\n",
              unscaled_mb(r->footprint.max_bytes), targets->footprint_max_mb,
              unscaled_mb(r->footprint.avg_bytes),
              targets->footprint_avg_mb);
  std::printf("IB         avg %7.1f MB/s (paper %6.1f)  max %7.1f MB/s "
              "(paper %6.1f)\n",
              unscaled_mb(r->ib.avg_ib), targets->avg_ib1_mb_s,
              unscaled_mb(r->ib.max_ib), targets->max_ib1_mb_s);
  std::printf("IWS/footprint avg: %.0f%%   iterations: %llu   period: %.2fs "
              "(paper %.2fs)\n",
              r->ib.avg_ratio * 100, static_cast<unsigned long long>(
                  r->iterations),
              r->period_s, targets->period_s);

  auto est = analysis::detect_period(r->per_rank[0].iws_bytes_series(),
                                     cfg.timeslice);
  if (est.found) {
    std::printf("period detected from IWS series: %.2fs (confidence %.2f)\n",
                est.period, est.confidence);
  }

  analysis::IBStats paper_eq;
  paper_eq.avg_ib = r->ib.avg_ib / scale;
  paper_eq.max_ib = r->ib.max_ib / scale;
  auto verdict = analysis::assess_feasibility(paper_eq);
  std::printf("feasibility (paper-equivalent magnitudes): %s\n",
              analysis::describe(verdict).c_str());
  return 0;
}
